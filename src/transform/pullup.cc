#include "transform/pullup.h"

#include <algorithm>

#include "algebra/logical_plan.h"

namespace aggview {

namespace {

void CollectPredicateColumns(const std::vector<Predicate>& preds,
                             std::set<ColId>* out) {
  for (const Predicate& p : preds) {
    for (ColId c : p.Columns()) out->insert(c);
  }
}

}  // namespace

Result<Query> PullUpIntoView(const Query& query, size_t view_idx,
                             const std::set<int>& pulled,
                             PullUpCertificate* cert) {
  if (view_idx >= query.views().size()) {
    return Status::InvalidArgument("view index out of range");
  }
  for (int r : pulled) {
    if (std::find(query.base_rels().begin(), query.base_rels().end(), r) ==
        query.base_rels().end()) {
      return Status::InvalidArgument(
          "pulled relation is not a top-block base relation");
    }
  }
  if (cert != nullptr) {
    *cert = PullUpCertificate{};
    cert->view_idx = view_idx;
    cert->pulled = pulled;
    cert->grouping_before = query.views()[view_idx].group_by.grouping;
  }
  if (pulled.empty()) return query;

  Query out = query;
  AggView& view = out.views()[view_idx];

  std::set<ColId> view_cols = out.ColumnsOfRels(view.spj.rels);
  std::vector<int> pulled_vec(pulled.begin(), pulled.end());
  std::set<ColId> pulled_cols = out.ColumnsOfRels(pulled_vec);
  std::set<ColId> agg_outputs = view.group_by.AggOutputSet();

  std::set<ColId> block_cols = view_cols;
  block_cols.insert(pulled_cols.begin(), pulled_cols.end());
  std::set<ColId> block_and_aggs = block_cols;
  block_and_aggs.insert(agg_outputs.begin(), agg_outputs.end());

  // Partition the top-level conjunction (Definition 1 items 4 and 5).
  std::vector<Predicate> staying_top;
  std::vector<Predicate> new_spj_preds;
  std::vector<Predicate> deferred_having;
  for (const Predicate& p : out.predicates()) {
    if (!p.BoundBy(block_and_aggs)) {
      staying_top.push_back(p);
      continue;
    }
    if (p.References(agg_outputs)) {
      deferred_having.push_back(p);
    } else if (p.References(pulled_cols)) {
      new_spj_preds.push_back(p);
    } else {
      // Bound entirely by the view's own relations: it could only have been
      // placed at the top if it referenced view outputs; keep it with the
      // block either way.
      new_spj_preds.push_back(p);
    }
  }

  // Pulled columns still needed above the (deferred) group-by: referenced by
  // the remaining top predicates, the top group-by, or the select list.
  std::set<ColId> needed_above;
  CollectPredicateColumns(staying_top, &needed_above);
  // Columns referenced by the deferred HAVING conjuncts must be grouping
  // columns of the deferred group-by (Example 1: e1.sal appears in query B's
  // GROUP BY precisely because `e1.sal > avg(e2.sal)` is deferred).
  CollectPredicateColumns(deferred_having, &needed_above);
  if (out.top_group_by().has_value()) {
    const GroupBySpec& g0 = *out.top_group_by();
    needed_above.insert(g0.grouping.begin(), g0.grouping.end());
    for (const AggregateCall& a : g0.aggregates) {
      needed_above.insert(a.args.begin(), a.args.end());
    }
    CollectPredicateColumns(g0.having, &needed_above);
  }
  needed_above.insert(out.select_list().begin(), out.select_list().end());

  // New grouping: original grouping, then needed pulled columns, then the
  // primary key of each pulled relation unless elided (Definition 1 item 2).
  std::vector<ColId> grouping = view.group_by.grouping;
  std::set<ColId> grouping_set(grouping.begin(), grouping.end());
  auto add_grouping = [&](ColId c) {
    if (grouping_set.insert(c).second) grouping.push_back(c);
  };
  for (int r : pulled_vec) {
    for (ColId c : out.range_var(r).columns) {
      if (needed_above.count(c) > 0) add_grouping(c);
    }
  }

  // Key elision: relation r's key may be skipped when the block's equi-join
  // predicates bind a key of r to columns already in the grouping set (then
  // at most one r-tuple matches each group — the foreign-key-join case).
  std::vector<Predicate> all_block_preds = view.spj.predicates;
  all_block_preds.insert(all_block_preds.end(), new_spj_preds.begin(),
                         new_spj_preds.end());
  std::set<int> others(view.spj.rels.begin(), view.spj.rels.end());
  others.insert(pulled.begin(), pulled.end());
  for (int r : pulled_vec) {
    const RangeVar& rv = out.range_var(r);
    const TableDef& def = out.catalog().table(rv.table);
    std::set<int> partners = others;
    partners.erase(r);

    std::vector<int> fixed_local;
    for (const auto& [partner_col, r_col] :
         EquiJoinPairs(out, all_block_preds, partners, r)) {
      if (grouping_set.count(partner_col) == 0) continue;
      for (size_t i = 0; i < rv.columns.size(); ++i) {
        if (rv.columns[i] == r_col) {
          fixed_local.push_back(static_cast<int>(i));
          break;
        }
      }
    }
    // Equality-with-literal selections also pin columns of r.
    for (const Predicate& p : all_block_preds) {
      ColId col;
      CompareOp op;
      Value v;
      if (p.AsColumnVsLiteral(&col, &op, &v) && op == CompareOp::kEq) {
        for (size_t i = 0; i < rv.columns.size(); ++i) {
          if (rv.columns[i] == col) {
            fixed_local.push_back(static_cast<int>(i));
            break;
          }
        }
      }
    }
    // Grouping columns owned by r are fixed per group by definition.
    for (ColId g : grouping_set) {
      for (size_t i = 0; i < rv.columns.size(); ++i) {
        if (rv.columns[i] == g) fixed_local.push_back(static_cast<int>(i));
      }
    }
    PullUpCertificate::RelClaim claim;
    claim.rel = r;
    if (def.CoversKey(fixed_local)) {
      // Elide: the join/selections already pin a key, ≤1 tuple per group.
      if (cert != nullptr) cert->rels.push_back(std::move(claim));
      continue;
    }
    if (!def.primary_key.empty()) {
      for (int k : def.primary_key) {
        ColId c = rv.columns[static_cast<size_t>(k)];
        add_grouping(c);
        claim.key_added.push_back(c);
      }
    } else if (rv.rowid != kInvalidColId) {
      // Keyless table: group by the internal tuple id (paper, Section 3).
      add_grouping(rv.rowid);
      claim.key_added.push_back(rv.rowid);
      claim.used_rowid = true;
    } else {
      return Status::InvalidArgument(
          "pull-up needs a primary key or tuple id on table '" + def.name +
          "'");
    }
    if (cert != nullptr) cert->rels.push_back(std::move(claim));
  }

  // Assemble the extended view.
  for (int r : pulled_vec) view.spj.rels.push_back(r);
  view.spj.predicates.insert(view.spj.predicates.end(), new_spj_preds.begin(),
                             new_spj_preds.end());
  view.group_by.grouping = std::move(grouping);
  view.group_by.having.insert(view.group_by.having.end(),
                              deferred_having.begin(), deferred_having.end());

  // Shrink the top block.
  std::vector<int> new_base;
  for (int r : out.base_rels()) {
    if (pulled.count(r) == 0) new_base.push_back(r);
  }
  out.base_rels() = std::move(new_base);
  out.predicates() = std::move(staying_top);

  if (cert != nullptr) {
    cert->block_rels = view.spj.rels;
    cert->block_predicates = view.spj.predicates;
    cert->grouping_after = view.group_by.grouping;
  }

  AGGVIEW_RETURN_NOT_OK(out.Validate());
  return out;
}

bool SharesPredicateWithView(const Query& query, const AggView& view,
                             const std::set<int>& already_pulled, int rel) {
  std::set<ColId> rel_cols = query.range_var(rel).ColumnSet();
  std::set<ColId> scope;
  for (ColId c : view.OutputColumns()) scope.insert(c);
  std::vector<int> pulled_vec(already_pulled.begin(), already_pulled.end());
  std::set<ColId> pulled_cols = query.ColumnsOfRels(pulled_vec);
  scope.insert(pulled_cols.begin(), pulled_cols.end());

  for (const Predicate& p : query.predicates()) {
    if (p.References(rel_cols) && p.References(scope)) return true;
  }
  return false;
}

}  // namespace aggview
