#include "transform/propagate.h"

#include <algorithm>
#include <map>

namespace aggview {

namespace {

/// Which view (index) owns `col` as a grouping output? -1 when none.
int GroupingOwner(const Query& query, ColId col) {
  for (size_t i = 0; i < query.views().size(); ++i) {
    const auto& grouping = query.views()[i].group_by.grouping;
    if (std::find(grouping.begin(), grouping.end(), col) != grouping.end()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool IsBaseColumn(const Query& query, ColId col) {
  for (int rel : query.base_rels()) {
    const RangeVar& rv = query.range_var(rel);
    if (std::find(rv.columns.begin(), rv.columns.end(), col) !=
        rv.columns.end()) {
      return true;
    }
  }
  return false;
}

std::string PredKey(const Query& query, const Predicate& p) {
  return p.ToString(query.columns());
}

}  // namespace

Result<Query> PropagatePredicates(const Query& query) {
  Query out = query;

  // (2) View HAVING conjuncts bound by grouping columns move below the
  // group-by.
  for (AggView& view : out.views()) {
    std::set<ColId> grouping(view.group_by.grouping.begin(),
                             view.group_by.grouping.end());
    std::vector<Predicate> staying;
    for (const Predicate& p : view.group_by.having) {
      if (p.BoundBy(grouping)) {
        view.spj.predicates.push_back(p);
      } else {
        staying.push_back(p);
      }
    }
    view.group_by.having = std::move(staying);
  }

  // (3) Top HAVING conjuncts bound by G0's grouping columns become WHERE
  // conjuncts.
  if (out.top_group_by().has_value()) {
    GroupBySpec& g0 = *out.top_group_by();
    std::set<ColId> grouping(g0.grouping.begin(), g0.grouping.end());
    std::vector<Predicate> staying;
    for (const Predicate& p : g0.having) {
      if (p.BoundBy(grouping)) {
        out.predicates().push_back(p);
      } else {
        staying.push_back(p);
      }
    }
    g0.having = std::move(staying);
  }

  // (4) Transfer literal bounds across top-level equi-joins (implication:
  // keep the source conjunct, add the derived one). Collect equivalence
  // pairs first.
  std::vector<std::pair<ColId, ColId>> equalities;
  for (const Predicate& p : out.predicates()) {
    ColId a, b;
    if (p.AsColumnEquality(&a, &b)) {
      equalities.emplace_back(a, b);
    }
  }
  std::set<std::string> existing;
  for (const Predicate& p : out.predicates()) {
    existing.insert(PredKey(out, p));
  }
  for (const AggView& view : out.views()) {
    for (const Predicate& p : view.spj.predicates) {
      existing.insert(PredKey(out, p));
    }
  }
  std::vector<Predicate> derived;
  for (const Predicate& p : out.predicates()) {
    ColId col;
    CompareOp op;
    Value v;
    if (!p.AsColumnVsLiteral(&col, &op, &v)) continue;
    for (const auto& [a, b] : equalities) {
      ColId other = kInvalidColId;
      if (a == col) other = b;
      if (b == col) other = a;
      if (other == kInvalidColId) continue;
      // Only derive for columns the top block can filter early: base
      // columns and view grouping outputs (handled by step 1 below).
      if (!IsBaseColumn(out, other) && GroupingOwner(out, other) < 0) continue;
      Predicate candidate(Col(other), op, Lit(v));
      std::string key = PredKey(out, candidate);
      if (existing.insert(key).second) {
        derived.push_back(std::move(candidate));
      }
    }
  }
  for (Predicate& p : derived) out.predicates().push_back(std::move(p));

  // (1) Top conjuncts over a single view's grouping outputs (and literals)
  // move into that view's SPJ block.
  std::vector<Predicate> staying_top;
  for (const Predicate& p : out.predicates()) {
    std::set<ColId> cols = p.Columns();
    int target = -1;
    bool movable = !cols.empty();
    for (ColId c : cols) {
      int owner = GroupingOwner(out, c);
      if (owner < 0) {
        movable = false;
        break;
      }
      if (target >= 0 && owner != target) {
        movable = false;
        break;
      }
      target = owner;
    }
    if (movable && target >= 0) {
      out.views()[static_cast<size_t>(target)].spj.predicates.push_back(p);
    } else {
      staying_top.push_back(p);
    }
  }
  out.predicates() = std::move(staying_top);

  AGGVIEW_RETURN_NOT_OK(out.Validate());
  return out;
}

}  // namespace aggview
