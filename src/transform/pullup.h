#ifndef AGGVIEW_TRANSFORM_PULLUP_H_
#define AGGVIEW_TRANSFORM_PULLUP_H_

#include <set>

#include "algebra/query.h"
#include "analysis/certificate.h"
#include "common/result.h"

namespace aggview {

/// The pull-up transformation of Section 3 (Definition 1), applied at the
/// query level: absorbs the top-block relations `pulled` into view
/// `view_idx`, deferring the view's group-by until after the joins with
/// them. The result is again a canonical-form query.
///
/// Effects (numbers refer to Definition 1):
///  - the pulled relations join the view's SPJ block;
///  - top-level predicates bound by the enlarged block move into it: those
///    involving the view's aggregate outputs become HAVING conjuncts of the
///    deferred group-by (item 4), the rest become SPJ predicates (item 5);
///  - the deferred group-by keeps its aggregates (item 3) and groups by the
///    original grouping columns, every pulled column still needed above the
///    view (item 1/2's "projection columns of J1"), and a primary key of
///    each pulled relation (item 2) — the key is elided when the join into
///    that relation already binds one of its keys to grouping columns (the
///    paper's foreign-key-join case).
///
/// Pulling every top-block relation into the only view of a query with no
/// G0 collapses the query to a single block — Example 1's query B.
///
/// When `cert` is non-null it receives the legality certificate of the
/// rewrite — which key of each pulled relation the deferred group-by now
/// groups by (or why the key could be elided) — for independent
/// re-verification by VerifyPullUpCertificate (analysis/analyzer.h).
Result<Query> PullUpIntoView(const Query& query, size_t view_idx,
                             const std::set<int>& pulled,
                             PullUpCertificate* cert = nullptr);

/// True when pulling `rel` into `view` is worth enumerating under the
/// paper's practical restriction: the relation shares a predicate with the
/// (possibly already extended) view block.
bool SharesPredicateWithView(const Query& query, const AggView& view,
                             const std::set<int>& already_pulled, int rel);

}  // namespace aggview

#endif  // AGGVIEW_TRANSFORM_PULLUP_H_
