#ifndef AGGVIEW_TRANSFORM_COALESCING_H_
#define AGGVIEW_TRANSFORM_COALESCING_H_

#include <set>

#include "algebra/query.h"
#include "analysis/certificate.h"
#include "common/result.h"

namespace aggview {

/// The two pieces of a simple-coalescing split (paper Section 4.2 /
/// Figure 2(b)): a pre-aggregation G2 applied below the remaining joins, and
/// the rewritten aggregate calls for the original (coalescing) group-by G1.
struct CoalescingSplit {
  /// The added pre-aggregation: groups by the original grouping columns
  /// available below plus every below-column still needed later, computing
  /// partial aggregates into fresh columns.
  GroupBySpec partial;
  /// Replacement aggregate calls for G1: same output columns as the original
  /// calls, but combining the partial columns (SUM of partial SUMs, SUM of
  /// partial COUNTs, MIN of MINs, AVG = sum/count of partials, ...).
  std::vector<AggregateCall> final_aggregates;
};

/// True when `spec` can be split: every aggregate is decomposable (Section
/// 4.2's applicability condition) and takes its arguments from `below_cols`
/// (COUNT(*) qualifies trivially).
bool CoalescingApplicable(const GroupBySpec& spec,
                          const std::set<ColId>& below_cols);

/// Computes the split. `below_cols` are the columns produced by the subplan
/// the pre-aggregation is placed on; `carry_cols` are the below-columns that
/// must survive the pre-aggregation because later joins/predicates/outputs
/// use them (they become extra grouping columns of G2, which is always
/// semantically safe — finer groups are coalesced by G1). Fresh partial
/// columns are allocated in `columns`. `cert` (optional) receives the
/// legality certificate of the split — the original spec, the partial
/// group-by, and the replacement calls — for independent re-verification by
/// VerifyCoalescingCertificate (analysis/analyzer.h).
Result<CoalescingSplit> SplitForCoalescing(const GroupBySpec& spec,
                                           const std::set<ColId>& below_cols,
                                           const std::set<ColId>& carry_cols,
                                           ColumnCatalog* columns,
                                           CoalescingCertificate* cert = nullptr);

}  // namespace aggview

#endif  // AGGVIEW_TRANSFORM_COALESCING_H_
