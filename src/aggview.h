#ifndef AGGVIEW_AGGVIEW_H_
#define AGGVIEW_AGGVIEW_H_

/// Umbrella header for the AggView library: cost-based optimization of
/// queries with aggregate views (Chaudhuri & Shim, EDBT 1996).
///
/// Typical flow — the Session facade (session.h):
///   Session session(SessionOptions{.threads = 8});
///   ... populate session.catalog() (tables + stats + data) ...
///   auto q = session.Sql(sql);        // parse -> bind -> optimize
///   auto result = q->Execute();       // morsel-parallel on 8 threads
///   std::cout << q->Explain();        // or q->ExplainAnalyze()
///
/// Multi-query serving — the Server layer (server/server.h): one Server
/// owns the catalog, a plan cache keyed on normalized SQL + stats epoch +
/// optimizer config, a shared worker pool, and FIFO admission control;
/// any number of client threads Connect() and issue Sql()/Execute().
///
/// The layers underneath remain directly usable: ParseAndBind (sql/binder.h),
/// OptimizeQueryWithAggViews (optimizer/aggview_optimizer.h), and
/// ExecutePlan(plan, query, ExecContext) (exec/executor.h).
///
/// Exhaustive verification — the small-scope prover (verify/prover.h):
/// ProveSqlTransformation enumerates every database within a bound and
/// asserts the traditional and transformed plans agree byte-for-byte,
/// shrinking any mismatch to a minimal counterexample.

#include "algebra/query.h"
#include "analysis/analyzer.h"
#include "analysis/certificate.h"
#include "analysis/dataflow.h"
#include "analysis/fd.h"
#include "analysis/fuzzer.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "common/status.h"
#include "exec/exec_context.h"
#include "exec/executor.h"
#include "exec/thread_pool.h"
#include "obs/explain.h"
#include "obs/runtime_stats.h"
#include "optimizer/aggview_optimizer.h"
#include "optimizer/plan_validator.h"
#include "optimizer/traditional.h"
#include "server/plan_cache.h"
#include "server/server.h"
#include "session.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"
#include "tpcd/schema.h"
#include "transform/coalescing.h"
#include "transform/propagate.h"
#include "transform/pullup.h"
#include "transform/pushdown.h"
#include "verify/enumerate.h"
#include "verify/prover.h"
#include "verify/shrink.h"
#include "verify/skeleton.h"
#include "view/definition_analysis.h"
#include "view/maintenance.h"
#include "view/matview.h"
#include "view/rewriter.h"

#endif  // AGGVIEW_AGGVIEW_H_
