#ifndef AGGVIEW_AGGVIEW_H_
#define AGGVIEW_AGGVIEW_H_

/// Umbrella header for the AggView library: cost-based optimization of
/// queries with aggregate views (Chaudhuri & Shim, EDBT 1996).
///
/// Typical flow:
///   Catalog catalog;                      // register tables + stats + data
///   auto query = ParseAndBind(catalog, sql);           // sql/binder.h
///   auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
///   auto result = ExecutePlan(optimized->plan, optimized->query, &io);

#include "algebra/query.h"
#include "analysis/analyzer.h"
#include "analysis/certificate.h"
#include "analysis/fd.h"
#include "analysis/fuzzer.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "common/status.h"
#include "exec/executor.h"
#include "obs/explain.h"
#include "obs/runtime_stats.h"
#include "optimizer/aggview_optimizer.h"
#include "optimizer/plan_validator.h"
#include "optimizer/traditional.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "tpcd/dbgen.h"
#include "tpcd/queries.h"
#include "tpcd/schema.h"
#include "transform/coalescing.h"
#include "transform/propagate.h"
#include "transform/pullup.h"
#include "transform/pushdown.h"

#endif  // AGGVIEW_AGGVIEW_H_
