#include "storage/io_accountant.h"

#include <algorithm>

namespace aggview {

int64_t RowsPerPage(int64_t row_width_bytes) {
  if (row_width_bytes <= 0) row_width_bytes = 1;
  return std::max<int64_t>(1, kPageSizeBytes / row_width_bytes);
}

int64_t PagesForRows(int64_t rows, int64_t row_width_bytes) {
  if (rows <= 0) return 0;
  int64_t per_page = RowsPerPage(row_width_bytes);
  return (rows + per_page - 1) / per_page;
}

}  // namespace aggview
