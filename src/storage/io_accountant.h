#ifndef AGGVIEW_STORAGE_IO_ACCOUNTANT_H_
#define AGGVIEW_STORAGE_IO_ACCOUNTANT_H_

#include <atomic>
#include <cstdint>

#include "common/thread_annotations.h"

namespace aggview {

/// Page geometry shared by the storage layer and the cost model. Using the
/// same unit on both sides is what makes "estimated IO" and "measured IO"
/// directly comparable in the experiments.
inline constexpr int64_t kPageSizeBytes = 8192;

/// Number of buffer pages available to each operator (the `B` of the
/// textbook cost formulas). Small enough that the experiment-scale tables do
/// not all fit in memory, so join/sort/aggregate algorithm choice matters.
inline constexpr int64_t kBufferPages = 64;

/// Rows per page for a given row width, and pages for a given row count —
/// the single definition used everywhere.
int64_t RowsPerPage(int64_t row_width_bytes);
int64_t PagesForRows(int64_t rows, int64_t row_width_bytes);

/// Counts page reads and writes charged by the execution engine. The
/// executor charges base-table scans per page and charges spill passes of
/// out-of-core joins / sorts / aggregations, mirroring the cost model's
/// formulas with actual (not estimated) cardinalities.
///
/// Charging is atomic (relaxed increments — the counters carry no ordering),
/// so one accountant may be shared by operators running on different worker
/// threads. The parallel executor additionally *defers* every data-dependent
/// charge to a serial merge point computed on totals, which keeps the charged
/// page counts byte-identical to serial execution at any thread count; the
/// atomics make the class safe even for callers that don't defer.
class IoAccountant {
 public:
  IoAccountant() = default;
  IoAccountant(const IoAccountant&) = delete;
  IoAccountant& operator=(const IoAccountant&) = delete;

  void ChargeRead(int64_t pages) {
    reads_.fetch_add(pages, std::memory_order_relaxed);
  }
  void ChargeWrite(int64_t pages) {
    writes_.fetch_add(pages, std::memory_order_relaxed);
  }
  void Reset() {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
  }

  int64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  int64_t writes() const { return writes_.load(std::memory_order_relaxed); }
  int64_t total() const { return reads() + writes(); }

 private:
  std::atomic<int64_t> reads_ AGGVIEW_LOCK_FREE("relaxed atomic counter"){0};
  std::atomic<int64_t> writes_ AGGVIEW_LOCK_FREE("relaxed atomic counter"){0};
};

}  // namespace aggview

#endif  // AGGVIEW_STORAGE_IO_ACCOUNTANT_H_
