#include "storage/table.h"

#include <algorithm>

namespace aggview {

Status Table::Append(Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (int i = 0; i < schema_.num_columns(); ++i) {
    if (row[static_cast<size_t>(i)].type() != schema_.column(i).type) {
      return Status::InvalidArgument("type mismatch in column '" +
                                     schema_.column(i).name + "'");
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::DeleteRows(const std::vector<int64_t>& indices) {
  for (int64_t i : indices) {
    if (i < 0 || i >= row_count()) {
      return Status::InvalidArgument("delete index out of range");
    }
  }
  std::vector<int64_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (sorted.empty()) return Status::OK();
  // Single-pass compaction: shift every survivor left over the holes.
  // Erasing one index at a time moves the whole tail per delete — O(n * d),
  // which dominates large-delta maintenance.
  size_t out = static_cast<size_t>(sorted[0]);
  size_t next_hole = 0;
  for (size_t i = out; i < rows_.size(); ++i) {
    if (next_hole < sorted.size() &&
        static_cast<int64_t>(i) == sorted[next_hole]) {
      ++next_hole;
      continue;
    }
    rows_[out++] = std::move(rows_[i]);
  }
  rows_.resize(out);
  return Status::OK();
}

}  // namespace aggview
