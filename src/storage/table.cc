#include "storage/table.h"

namespace aggview {

Status Table::Append(Row row) {
  if (static_cast<int>(row.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  for (int i = 0; i < schema_.num_columns(); ++i) {
    if (row[static_cast<size_t>(i)].type() != schema_.column(i).type) {
      return Status::InvalidArgument("type mismatch in column '" +
                                     schema_.column(i).name + "'");
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

}  // namespace aggview
