#ifndef AGGVIEW_STORAGE_TABLE_H_
#define AGGVIEW_STORAGE_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/io_accountant.h"
#include "types/schema.h"
#include "types/value.h"

namespace aggview {

/// An in-memory row store with page geometry. Rows live in a vector; the
/// page count is derived from the schema row width so that scanning the
/// table charges the same number of IOs the cost model predicts.
class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return schema_; }
  int64_t row_count() const { return static_cast<int64_t>(rows_.size()); }
  int64_t page_count() const {
    return PagesForRows(row_count(), schema_.RowWidth());
  }

  /// Appends a row; fails when arity or column types do not match the schema.
  Status Append(Row row);

  /// Appends without validation (bulk loader fast path; the loader validates
  /// once per batch).
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  /// Pre-sizes the row store for `n` rows so a bulk load appends without
  /// repeated reallocation. A hint: loading more than `n` rows still works.
  void Reserve(int64_t n) {
    if (n > 0) rows_.reserve(static_cast<size_t>(n));
  }

  const Row& row(int64_t i) const { return rows_[static_cast<size_t>(i)]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// In-place update of one row (materialized-view maintenance applies
  /// per-group deltas this way). The caller keeps the schema invariant.
  void SetRow(int64_t i, Row row) { rows_[static_cast<size_t>(i)] = std::move(row); }

  /// Removes the rows at `indices` (any order, duplicates ignored). Fails on
  /// an out-of-range index before touching anything.
  Status DeleteRows(const std::vector<int64_t>& indices);

  /// Replaces the whole row store (refresh swaps the re-materialized
  /// content in; the fuzzer's mutation cycle restores a snapshot).
  void ReplaceRows(std::vector<Row> rows) { rows_ = std::move(rows); }

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace aggview

#endif  // AGGVIEW_STORAGE_TABLE_H_
