#ifndef AGGVIEW_COMMON_RESULT_H_
#define AGGVIEW_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace aggview {

/// A value-or-error holder, analogous to arrow::Result / absl::StatusOr.
///
/// Either holds a T (status().ok() is true) or an error Status. Accessing the
/// value of an errored Result aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so functions can `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from an error status (implicit, so functions can
  /// `return Status::...;`). `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace aggview

/// Assigns the value of a Result-returning expression to `lhs`, or returns the
/// error from the enclosing function.
#define AGGVIEW_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define AGGVIEW_ASSIGN_OR_RETURN(lhs, expr) \
  AGGVIEW_ASSIGN_OR_RETURN_IMPL(            \
      AGGVIEW_CONCAT_(_result_, __LINE__), lhs, expr)

#define AGGVIEW_CONCAT_(a, b) AGGVIEW_CONCAT_IMPL_(a, b)
#define AGGVIEW_CONCAT_IMPL_(a, b) a##b

#endif  // AGGVIEW_COMMON_RESULT_H_
