#ifndef AGGVIEW_COMMON_THREAD_ANNOTATIONS_H_
#define AGGVIEW_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>

/// Clang thread-safety annotations (-Wthread-safety), compiled to nothing on
/// toolchains without the capability attributes (GCC). The macros carry an
/// AGGVIEW_ prefix so they never collide with a platform's own definitions.
///
/// The analysis is static and lock-based: members annotated
/// AGGVIEW_GUARDED_BY(mu) may only be touched while `mu` is held, which clang
/// proves at compile time. std::mutex under libstdc++ carries no capability
/// attributes, so the annotated aggview::Mutex / aggview::MutexLock wrappers
/// below are what guarded code locks with; they are zero-cost shims over
/// std::mutex.
///
/// Not everything shared is lock-guarded: the executor's hot paths
/// synchronize through atomics (IoAccountant's counters, the scan's morsel
/// cursor) or through the ThreadPool::ParallelFor completion barrier (the
/// parallel hash-join build spools, worker-clone absorption). Those members
/// are annotated AGGVIEW_LOCK_FREE(...) — an expands-to-nothing marker that
/// states the synchronization discipline where GUARDED_BY would state a
/// mutex, so every cross-thread member in the codebase declares how it is
/// made safe.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define AGGVIEW_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef AGGVIEW_THREAD_ANNOTATION
#define AGGVIEW_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define AGGVIEW_CAPABILITY(x) AGGVIEW_THREAD_ANNOTATION(capability(x))
#define AGGVIEW_SCOPED_CAPABILITY AGGVIEW_THREAD_ANNOTATION(scoped_lockable)
#define AGGVIEW_GUARDED_BY(x) AGGVIEW_THREAD_ANNOTATION(guarded_by(x))
#define AGGVIEW_PT_GUARDED_BY(x) AGGVIEW_THREAD_ANNOTATION(pt_guarded_by(x))
#define AGGVIEW_REQUIRES(...) \
  AGGVIEW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define AGGVIEW_ACQUIRE(...) \
  AGGVIEW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define AGGVIEW_RELEASE(...) \
  AGGVIEW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define AGGVIEW_EXCLUDES(...) \
  AGGVIEW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define AGGVIEW_RETURN_CAPABILITY(x) \
  AGGVIEW_THREAD_ANNOTATION(lock_returned(x))
#define AGGVIEW_NO_THREAD_SAFETY_ANALYSIS \
  AGGVIEW_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Documents a member that is shared across threads but synchronized by
/// means the lock-based analysis cannot model: atomic operations, or a
/// happens-before edge established by ThreadPool::ParallelFor's completion
/// handshake. Expands to nothing; the argument is the discipline.
#define AGGVIEW_LOCK_FREE(discipline)

namespace aggview {

/// std::mutex with clang capability attributes, so members can be declared
/// AGGVIEW_GUARDED_BY(mu_) and the analysis can verify every access.
class AGGVIEW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AGGVIEW_ACQUIRE() { mu_.lock(); }
  void Unlock() AGGVIEW_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over Mutex. Also satisfies BasicLockable (lock / unlock), so a
/// std::condition_variable_any can release and reacquire it inside wait();
/// the analysis treats the capability as held across the wait, which is the
/// correct before/after contract.
class AGGVIEW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) AGGVIEW_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() AGGVIEW_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// BasicLockable hooks for std::condition_variable_any. Only the condition
  /// variable calls these (the capability state is unchanged from the
  /// analysis' point of view — wait() returns with the lock re-held).
  void lock() AGGVIEW_NO_THREAD_SAFETY_ANALYSIS { mu_->Lock(); }
  void unlock() AGGVIEW_NO_THREAD_SAFETY_ANALYSIS { mu_->Unlock(); }

 private:
  Mutex* mu_;
};

}  // namespace aggview

#endif  // AGGVIEW_COMMON_THREAD_ANNOTATIONS_H_
