#ifndef AGGVIEW_COMMON_STRING_UTIL_H_
#define AGGVIEW_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace aggview {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLower(std::string_view s);

/// True when `a` equals `b` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace aggview

#endif  // AGGVIEW_COMMON_STRING_UTIL_H_
