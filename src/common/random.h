#ifndef AGGVIEW_COMMON_RANDOM_H_
#define AGGVIEW_COMMON_RANDOM_H_

#include <cassert>
#include <cstdint>
#include <random>
#include <string>

namespace aggview {

/// Deterministic pseudo-random source used by the data generators and the
/// property tests. A fixed seed reproduces byte-identical databases, which is
/// what makes the experiment outputs repeatable.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool Chance(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Zipf-like skewed integer in [1, n]: rank r drawn with probability
  /// proportional to 1/r^theta. Used for skewed foreign keys.
  int64_t Zipf(int64_t n, double theta);

  /// Random lowercase ASCII string of exactly `len` characters.
  std::string String(int len) {
    std::string s(static_cast<size_t>(len), 'a');
    for (char& c : s) c = static_cast<char>('a' + Uniform(0, 25));
    return s;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

inline int64_t Rng::Zipf(int64_t n, double theta) {
  assert(n >= 1);
  // Inverse-CDF on the generalized harmonic weights; O(log n) via
  // approximation of the partial sums by integrals is overkill here, so use
  // rejection-free sequential search only for small n and the integral
  // approximation otherwise.
  if (theta <= 0.0) return Uniform(1, n);
  double u = UniformReal(0.0, 1.0);
  // H(x) ~= (x^(1-theta) - 1) / (1 - theta) for theta != 1, ln(x) otherwise.
  double hn;
  if (theta == 1.0) {
    hn = std::log(static_cast<double>(n));
    double x = std::exp(u * hn);
    int64_t r = static_cast<int64_t>(x);
    return std::min<int64_t>(std::max<int64_t>(r, 1), n);
  }
  hn = (std::pow(static_cast<double>(n), 1.0 - theta) - 1.0) / (1.0 - theta);
  double x = std::pow(u * hn * (1.0 - theta) + 1.0, 1.0 / (1.0 - theta));
  int64_t r = static_cast<int64_t>(x);
  return std::min<int64_t>(std::max<int64_t>(r, 1), n);
}

}  // namespace aggview

#endif  // AGGVIEW_COMMON_RANDOM_H_
