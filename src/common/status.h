#ifndef AGGVIEW_COMMON_STATUS_H_
#define AGGVIEW_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace aggview {

/// Error codes used across the library. Library code reports failures through
/// Status / Result<T> rather than exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kBindError,
  kExecutionError,
};

/// Returns a human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, in the style of Arrow / RocksDB.
///
/// The OK status carries no message and is cheap to copy. Error statuses carry
/// a code and a message describing what went wrong.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace aggview

/// Evaluates `expr` (a Status-returning expression) and returns it from the
/// enclosing function if it is an error.
#define AGGVIEW_RETURN_NOT_OK(expr)                  \
  do {                                               \
    ::aggview::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (false)

#endif  // AGGVIEW_COMMON_STATUS_H_
