#include "session.h"

#include "analysis/dataflow.h"
#include "exec/thread_pool.h"
#include "obs/explain.h"
#include "obs/runtime_stats.h"
#include "optimizer/traditional.h"
#include "sql/binder.h"
#include "view/matview.h"
#include "view/rewriter.h"

namespace aggview {

SessionOptions SessionOptions::Default() {
  SessionOptions options;
  ExecDefaults env = ExecDefaults::FromEnv();
  options.threads = env.threads;
  options.batch_size = env.batch_size;
  options.backend = env.backend;
  options.bytecode_verify = env.bytecode_verify;
  return options;
}

Session::Session(SessionOptions options)
    : options_(std::move(options)),
      self_(std::make_shared<Session*>(this)) {
  if (options_.threads < 1) options_.threads = 1;
  if (options_.batch_size < 1) options_.batch_size = 1;
}

Session::~Session() { *self_ = nullptr; }

ThreadPool* Session::pool() {
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(options_.threads);
  return pool_.get();
}

ExecContext Session::MakeContext() {
  ExecContext ctx;
  ctx.batch_size = options_.batch_size;
  ctx.threads = options_.threads;
  ctx.backend = options_.backend;
  ctx.bytecode_verify = options_.bytecode_verify;
  if (options_.threads > 1) ctx.pool = pool();
  return ctx;
}

Result<PreparedQuery> Session::Sql(const std::string& text) {
  AGGVIEW_ASSIGN_OR_RETURN(Query query, ParseAndBind(catalog_, text));
  std::vector<ViewRewriteCertificate> view_certs;
  int view_rewrites = 0;
  if (options_.use_materialized_views && catalog_.num_views() > 0) {
    AGGVIEW_ASSIGN_OR_RETURN(
        view_rewrites,
        RewriteWithMaterializedViews(catalog_, &query, &view_certs));
  }
  OptimizedQuery optimized;
  if (options_.use_traditional) {
    AGGVIEW_ASSIGN_OR_RETURN(optimized, OptimizeTraditional(query));
  } else {
    AGGVIEW_ASSIGN_OR_RETURN(optimized,
                             OptimizeQueryWithAggViews(query, options_.optimizer));
  }
  if (view_rewrites > 0) {
    for (ViewRewriteCertificate& cert : view_certs) {
      optimized.audit.view_rewrites.push_back(std::move(cert));
    }
    optimized.description =
        "answered " + std::to_string(view_rewrites) +
        " block(s) from materialized views; " + optimized.description;
    // Backing-column statistics can prove bounds the estimator's heuristics
    // miss; keep the plan's estimates inside them.
    optimized.plan = ClampEstimatesToProvableBounds(optimized.plan, optimized.query);
  }
  return PreparedQuery(self_, std::move(optimized), options_.backend);
}

Result<std::string> Session::ExecuteDdl(const std::string& text) {
  return ExecuteMatViewStatement(&catalog_, text, MakeContext());
}

Result<Session*> PreparedQuery::session() const {
  if (session_ == nullptr) {
    return Status::InvalidArgument(
        "PreparedQuery is moved-from; execute the query it was moved into");
  }
  if (*session_ == nullptr) {
    return Status::InvalidArgument(
        "PreparedQuery outlived its Session: the Session owning the catalog "
        "data and worker pool has been destroyed");
  }
  return *session_;
}

Result<QueryResult> PreparedQuery::Execute() {
  AGGVIEW_ASSIGN_OR_RETURN(Session * session, this->session());
  IoAccountant io;
  AGGVIEW_ASSIGN_OR_RETURN(
      QueryResult result,
      ExecutePlan(optimized_.plan, optimized_.query,
                  session->MakeContext().WithIo(&io).WithAudit(
                      &optimized_.audit)));
  last_io_pages_ = io.total();
  return result;
}

std::string PreparedQuery::Explain() const {
  std::string out = optimized_.description;
  if (!out.empty() && out.back() != '\n') out += "\n";
  out += PlanToString(optimized_.plan, optimized_.query);
  return out;
}

Result<std::string> PreparedQuery::ExplainAnalyze(bool verbose) {
  AGGVIEW_ASSIGN_OR_RETURN(Session * session, this->session());
  IoAccountant io;
  RuntimeStatsCollector stats;
  AGGVIEW_RETURN_NOT_OK(ExecutePlan(optimized_.plan, optimized_.query,
                                    session->MakeContext()
                                        .WithIo(&io)
                                        .WithStats(&stats)
                                        .WithAudit(&optimized_.audit))
                            .status());
  last_io_pages_ = io.total();
  return aggview::ExplainAnalyze(optimized_.plan, optimized_.query, stats,
                                 verbose ? &optimized_.audit : nullptr);
}

}  // namespace aggview
