#ifndef AGGVIEW_OPTIMIZER_JOIN_ENUMERATOR_H_
#define AGGVIEW_OPTIMIZER_JOIN_ENUMERATOR_H_

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "optimizer/plan.h"
#include "transform/pushdown.h"

namespace aggview {

/// One input relation of a single-block query: either a base range variable
/// (scanned, with local predicates pushed into the scan) or a composite
/// input — an already-optimized subplan such as an aggregate view.
struct BlockRel {
  std::string name;
  /// >= 0 for a base range variable.
  int scan_rel = -1;
  /// Non-null for a composite input.
  PlanPtr composite;
  /// Keys for group-by movement analysis: declared table keys for base
  /// relations, the grouping columns for an aggregated composite.
  std::vector<std::vector<ColId>> keys;
};

/// A single-block query in the sense of Section 2: a join of relations under
/// a conjunction, optionally topped by one group-by (+HAVING).
struct BlockSpec {
  std::vector<BlockRel> rels;
  std::vector<Predicate> predicates;
  std::optional<GroupBySpec> group_by;
  /// Columns the block's consumer needs (post-group-by outputs included).
  std::set<ColId> needed_output;
};

/// Debug hook run on every plan a DP table is about to admit. Returning an
/// error aborts the whole enumeration with that error — used by the paranoid
/// mode of the optimizer to run the semantic analyzer (analysis/analyzer.h)
/// at every DP-table insertion, not just on the final plan.
using PlanCheckFn = std::function<Status(const PlanPtr&)>;

/// Options controlling the enumeration (Section 5.2).
struct EnumeratorOptions {
  /// Enables the greedy conservative heuristic: linear *aggregate* join
  /// trees, with early group-by placement chosen locally (cheaper and no
  /// wider). Off = the traditional enumerator (group-by after all joins).
  bool greedy_aggregation = true;
  /// Individual transformation gates (both require greedy_aggregation).
  bool enable_invariant = true;
  bool enable_coalescing = true;
  /// When set, called on every candidate plan at DP-table insertion time.
  PlanCheckFn dp_check;
  /// Emit and immediately verify a legality certificate for every early
  /// group-by placement (invariant push, coalescing split) the enumerator
  /// tries. An unverifiable placement aborts the enumeration — it would mean
  /// the transformation's side conditions and the analyzer's re-derivation
  /// disagree.
  bool verify_certificates = false;
};

/// Instrumentation shared across enumerator invocations (experiment E7).
struct EnumerationCounters {
  int64_t joins_considered = 0;     // joinplan() invocations
  int64_t groupby_placements = 0;   // early group-by candidates costed
  int64_t subsets_stored = 0;       // DP entries retained
  int64_t plans_checked = 0;        // dp_check invocations
  int64_t certificates_verified = 0;  // legality certificates re-proved
};

/// System-R style dynamic programming over linear (left-deep) join orders
/// [SAC+79], extended per Section 5.2 with the greedy conservative heuristic
/// of [CS94]: when extending a subplan, an early application of the block's
/// group-by (invariant form, which ends aggregation for the block, or simple
/// coalescing form, which adds a pre-aggregation) is also considered, and is
/// kept only when it is cheaper than the unaggregated alternative and its
/// output row is no wider — which is what makes the final plan provably no
/// worse than the traditional one under an IO-only cost model.
///
/// Returns the best plan for the block, already including the (possibly
/// pushed or split) group-by and HAVING. `columns` must be the query's
/// column catalog (coalescing allocates partial-aggregate columns).
Result<PlanPtr> OptimizeBlock(const Query& query, ColumnCatalog* columns,
                              const BlockSpec& block,
                              const EnumeratorOptions& options,
                              EnumerationCounters* counters);

}  // namespace aggview

#endif  // AGGVIEW_OPTIMIZER_JOIN_ENUMERATOR_H_
