#ifndef AGGVIEW_OPTIMIZER_AGGVIEW_OPTIMIZER_H_
#define AGGVIEW_OPTIMIZER_AGGVIEW_OPTIMIZER_H_

#include <string>
#include <vector>

#include "analysis/certificate.h"
#include "optimizer/join_enumerator.h"

namespace aggview {

/// Options of the two-phase aggregate-view optimizer (Sections 5.3 / 5.4).
struct OptimizerOptions {
  /// Single-block enumeration options (greedy conservative heuristic).
  EnumeratorOptions enumerator;
  /// Run the [MFPR90, LMS94]-style predicate propagation first (the prior
  /// art the paper's Section 1 builds on). On for both the traditional and
  /// the extended configuration, so comparisons are against the realistic
  /// preprocessed baseline.
  bool propagate_predicates = true;
  /// k-level pull-up: at most this many relations may be pulled into any one
  /// view (the paper's restriction bounding the W-subset explosion). 0
  /// disables pull-up entirely.
  int max_pullup = 2;
  /// Enumerate pulling a relation only when it shares a predicate with the
  /// (possibly already extended) view — the paper's other practical
  /// restriction.
  bool require_shared_predicate = true;
  /// Move each view's removable relations (V - V') into the top block before
  /// enumerating (Section 5.3's B' = B ∪ (V - V')).
  bool shrink_views = true;
  /// Safety cap on the number of W assignments evaluated.
  int max_assignments = 512;
  /// Also run the traditional two-phase optimizer and return its plan when
  /// (contrary to the paper's argument) it beats every enumerated
  /// alternative. Keeping it on makes the no-worse guarantee unconditional.
  bool include_traditional_alternative = true;
  /// Paranoid self-checking: run the semantic analyzer (analysis/analyzer.h)
  /// on every candidate plan at DP-table insertion time, emit and re-verify a
  /// legality certificate for every transformation applied (pull-up, view
  /// shrinking, early group-by placement), and analyze the winning plan once
  /// more before returning it. Any failure aborts optimization with an error
  /// naming the offending node or claim. Defaults on when the library is
  /// built with -DAGGVIEW_PARANOID=ON.
#ifdef AGGVIEW_PARANOID
  bool paranoid = true;
#else
  bool paranoid = false;
#endif
  /// When paranoid, include the dataflow verifier pass (analysis/dataflow.h)
  /// in every DP-insertion analysis and in the final-plan analysis. Turning
  /// it off (bench_e12) isolates what the abstract interpretation costs on
  /// top of the other semantic passes.
  bool paranoid_dataflow = true;
};

/// One evaluated alternative (a W assignment), for the experiment reports.
struct PlanAlternative {
  std::string description;
  double cost = 0.0;
};

/// The outcome of optimization. `plan` must be interpreted (and executed)
/// against `query`, which is the rewritten query of the winning alternative
/// (its column catalog contains any partial-aggregate columns allocated
/// during enumeration).
struct OptimizedQuery {
  Query query;
  PlanPtr plan;
  EnumerationCounters counters;
  std::string description;
  std::vector<PlanAlternative> alternatives;
  /// Certificates of every query-level transformation the winning rewrite
  /// applied (view shrinking, pull-up). Populated in paranoid mode; each was
  /// verified when it was emitted and can be re-verified against `query` with
  /// VerifyAudit.
  TransformationAudit audit;

  OptimizedQuery() : query(nullptr) {}
  explicit OptimizedQuery(Query q) : query(std::move(q)) {}
};

/// Cost-based optimization of a canonical-form query with aggregate views:
/// shrink views to their minimal invariant sets, enumerate pull-up subsets
/// W_i per view (subject to the practical restrictions), optimize each
/// extended view Φ(V_i', W_i) with the greedy conservative enumerator
/// (phase 1), then optimize the top block over the composites and the
/// remaining relations (phase 2). The returned plan's estimated cost is
/// never worse than the traditional optimizer's.
Result<OptimizedQuery> OptimizeQueryWithAggViews(const Query& query,
                                                 const OptimizerOptions& options);

}  // namespace aggview

#endif  // AGGVIEW_OPTIMIZER_AGGVIEW_OPTIMIZER_H_
