#ifndef AGGVIEW_OPTIMIZER_TRADITIONAL_H_
#define AGGVIEW_OPTIMIZER_TRADITIONAL_H_

#include "optimizer/aggview_optimizer.h"

namespace aggview {

/// The traditional two-phase optimizer of Section 5.1: every aggregate view
/// is optimized locally with the plain System-R enumerator (group-by applied
/// after all of the block's joins), then the top block is optimized treating
/// the views as base relations, with G0 applied last. No pull-up, no
/// push-down, no view shrinking.
Result<OptimizedQuery> OptimizeTraditional(const Query& query);

/// Options preset matching OptimizeTraditional (useful for ablations).
OptimizerOptions TraditionalOptions();

}  // namespace aggview

#endif  // AGGVIEW_OPTIMIZER_TRADITIONAL_H_
