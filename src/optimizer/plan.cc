#include "optimizer/plan.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"
#include "storage/io_accountant.h"
#include "storage/table.h"

namespace aggview {

namespace {

/// Projects `available` (in order) to the columns in `needed`.
std::vector<ColId> ProjectColumns(const std::vector<ColId>& available,
                                  const std::set<ColId>& needed) {
  std::vector<ColId> out;
  for (ColId c : available) {
    if (needed.count(c) > 0) out.push_back(c);
  }
  return out;
}

bool HasEquiJoinConjunct(const std::vector<Predicate>& preds,
                         const RowLayout& left, const RowLayout& right) {
  for (const Predicate& p : preds) {
    ColId a, b;
    if (!p.AsColumnEquality(&a, &b)) continue;
    if ((left.Contains(a) && right.Contains(b)) ||
        (left.Contains(b) && right.Contains(a))) {
      return true;
    }
  }
  return false;
}

}  // namespace

PlanPtr PlanBuilder::Scan(int rel_id, std::vector<Predicate> local_preds,
                          const std::set<ColId>& needed) const {
  const RangeVar& rv = query_->range_var(rel_id);
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kScan;
  node->rel_id = rel_id;
  node->scan_filter = std::move(local_preds);

  RelEstimate base = Estimator::BaseRel(*query_, rel_id);
  node->est = Estimator::ApplyFilter(base, node->scan_filter);

  // Projection: needed columns only, but never empty (a degenerate query may
  // need no column from a relation; keep the first so rows exist).
  std::vector<ColId> available = rv.columns;
  if (rv.rowid != kInvalidColId) available.push_back(rv.rowid);
  std::vector<ColId> cols = ProjectColumns(available, needed);
  if (cols.empty() && !available.empty()) cols.push_back(available[0]);
  node->output = RowLayout(cols);
  node->width = static_cast<double>(node->output.RowWidth(query_->columns()));

  const TableDef& def = query_->catalog().table(rv.table);
  double pages = static_cast<double>(def.data != nullptr
                                         ? def.data->page_count()
                                         : PagesForRows(def.stats.row_count,
                                                        def.schema.RowWidth()));
  node->cost = CostModel::ScanCost(pages);
  return node;
}

PlanPtr PlanBuilder::Filter(PlanPtr input, std::vector<Predicate> preds) const {
  if (preds.empty()) return input;
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kFilter;
  node->left = input;
  node->filter_preds = std::move(preds);
  node->est = Estimator::ApplyFilter(input->est, node->filter_preds);
  node->output = input->output;
  node->width = input->width;
  node->cost = input->cost;  // pipelined; no IO of its own
  return node;
}

PlanPtr PlanBuilder::Join(JoinAlgo algo, PlanPtr left, PlanPtr right,
                          std::vector<Predicate> preds,
                          const std::set<ColId>& needed) const {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kJoin;
  node->algo = algo;
  node->left = left;
  node->right = right;
  node->join_preds = std::move(preds);
  node->est = Estimator::Join(left->est, right->est, node->join_preds);

  std::vector<ColId> cols;
  cols.reserve(left->output.columns().size() + right->output.columns().size());
  for (ColId c : left->output.columns()) cols.push_back(c);
  for (ColId c : right->output.columns()) cols.push_back(c);
  cols = ProjectColumns(cols, needed);
  if (cols.empty()) {
    // Keep one column so the relation is non-degenerate.
    if (!left->output.columns().empty()) {
      cols.push_back(left->output.columns()[0]);
    } else if (!right->output.columns().empty()) {
      cols.push_back(right->output.columns()[0]);
    }
  }
  node->output = RowLayout(cols);
  node->width = static_cast<double>(node->output.RowWidth(query_->columns()));

  double lp = left->OutputPages();
  double rp = right->OutputPages();
  double local = 0.0;
  double children = left->cost + right->cost;
  switch (algo) {
    case JoinAlgo::kBlockNestedLoop: {
      if (right->kind == PlanNode::Kind::kScan && right->scan_filter.empty()) {
        // Re-scan the base table every pass; the single child scan cost is
        // subsumed by the passes.
        const RangeVar& rv = query_->range_var(right->rel_id);
        const TableDef& def = query_->catalog().table(rv.table);
        double base_pages = static_cast<double>(
            def.data != nullptr ? def.data->page_count()
                                : PagesForRows(def.stats.row_count,
                                               def.schema.RowWidth()));
        children = left->cost;
        local = CostModel::BnlLocalCost(lp, base_pages);
      } else {
        // Materialize the inner once, then one read per outer block.
        local = CostModel::MaterializeCost(rp) + CostModel::BnlLocalCost(lp, rp);
      }
      break;
    }
    case JoinAlgo::kHash:
      local = CostModel::HashJoinLocalCost(lp, rp);
      break;
    case JoinAlgo::kSortMerge:
      local = CostModel::SortMergeLocalCost(lp, rp);
      break;
  }
  node->cost = children + local;
  return node;
}

PlanPtr PlanBuilder::LeftOuterJoin(PlanPtr left, PlanPtr right,
                                   std::vector<Predicate> preds,
                                   const std::set<ColId>& needed) const {
  bool equi = HasEquiJoinConjunct(preds, left->output, right->output);
  PlanPtr inner = Join(equi ? JoinAlgo::kHash : JoinAlgo::kBlockNestedLoop,
                       left, right, std::move(preds), needed);
  auto node = std::make_shared<PlanNode>(*inner);
  node->left_outer = true;
  // Every left row survives.
  node->est.rows = std::max(node->est.rows, left->est.rows);
  return node;
}

PlanPtr PlanBuilder::BestJoin(PlanPtr left, PlanPtr right,
                              std::vector<Predicate> preds,
                              const std::set<ColId>& needed) const {
  PlanPtr best = Join(JoinAlgo::kBlockNestedLoop, left, right, preds, needed);
  if (HasEquiJoinConjunct(preds, left->output, right->output)) {
    for (JoinAlgo algo : {JoinAlgo::kHash, JoinAlgo::kSortMerge}) {
      PlanPtr alt = Join(algo, left, right, preds, needed);
      if (alt->cost < best->cost) best = alt;
    }
  }
  return best;
}

PlanPtr PlanBuilder::GroupBy(PlanPtr input, GroupBySpec spec,
                             const std::set<ColId>& needed) const {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kGroupBy;
  node->left = input;
  node->est = Estimator::GroupBy(input->est, spec);

  std::vector<ColId> outputs = spec.OutputColumns();
  node->group_by = std::move(spec);
  std::vector<ColId> cols = ProjectColumns(outputs, needed);
  if (cols.empty() && !outputs.empty()) cols.push_back(outputs[0]);
  node->output = RowLayout(cols);
  node->width = static_cast<double>(node->output.RowWidth(query_->columns()));
  node->cost = input->cost + CostModel::HashAggLocalCost(input->OutputPages());
  return node;
}

PlanPtr PlanBuilder::Sort(PlanPtr input, std::vector<OrderKey> keys) const {
  if (keys.empty()) return input;
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kSort;
  node->left = input;
  node->sort_keys = std::move(keys);
  node->est = input->est;
  node->output = input->output;
  node->width = input->width;
  node->cost = input->cost + CostModel::SortCost(input->OutputPages());
  return node;
}

PlanPtr PlanBuilder::Project(PlanPtr input,
                             const std::vector<ColId>& select) const {
  bool same = input->output.columns() == select;
  if (same) return input;
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kFilter;  // filter with no predicates = project
  node->left = input;
  node->est = input->est;
  node->output = RowLayout(select);
  node->width = static_cast<double>(node->output.RowWidth(query_->columns()));
  node->cost = input->cost;
  return node;
}

std::string PlanNodeLabel(const PlanPtr& plan, const Query& query) {
  const ColumnCatalog& cat = query.columns();
  std::string out;
  switch (plan->kind) {
    case PlanNode::Kind::kScan: {
      const RangeVar& rv = query.range_var(plan->rel_id);
      out += StrFormat("Scan %s %s",
                       query.catalog().table(rv.table).name.c_str(),
                       rv.alias.c_str());
      for (const Predicate& p : plan->scan_filter) {
        out += " [" + p.ToString(cat) + "]";
      }
      break;
    }
    case PlanNode::Kind::kFilter: {
      out += "Filter";
      for (const Predicate& p : plan->filter_preds) {
        out += " [" + p.ToString(cat) + "]";
      }
      break;
    }
    case PlanNode::Kind::kJoin: {
      out += StrFormat("Join(%s%s)", JoinAlgoName(plan->algo),
                       plan->left_outer ? ", outer" : "");
      for (const Predicate& p : plan->join_preds) {
        out += " [" + p.ToString(cat) + "]";
      }
      break;
    }
    case PlanNode::Kind::kGroupBy: {
      out += "GroupBy " + plan->group_by.ToString(cat);
      break;
    }
    case PlanNode::Kind::kSort: {
      out += "Sort";
      for (const OrderKey& key : plan->sort_keys) {
        out += " [" + cat.name(key.column) +
               (key.descending ? " desc]" : "]");
      }
      break;
    }
  }
  return out;
}

namespace {

void PlanToStringRec(const PlanPtr& plan, const Query& query, int indent,
                     std::string* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  *out += pad + PlanNodeLabel(plan, query);
  *out += StrFormat("  {rows=%.1f cost=%.1f}\n", plan->est.rows, plan->cost);
  if (plan->left != nullptr) PlanToStringRec(plan->left, query, indent + 1, out);
  if (plan->right != nullptr) {
    PlanToStringRec(plan->right, query, indent + 1, out);
  }
}

}  // namespace

std::string PlanToString(const PlanPtr& plan, const Query& query) {
  std::string out;
  PlanToStringRec(plan, query, 0, &out);
  return out;
}

}  // namespace aggview
