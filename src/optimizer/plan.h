#ifndef AGGVIEW_OPTIMIZER_PLAN_H_
#define AGGVIEW_OPTIMIZER_PLAN_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algebra/query.h"
#include "cost/cost_model.h"
#include "stats/estimator.h"

namespace aggview {

struct PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// A physical execution plan node. Immutable and shared: the dynamic
/// programming tables reference subplans from many alternatives.
///
/// Every node carries its projected output layout, the estimated output
/// relation (rows + column stats), the estimated output row width, and the
/// cumulative estimated IO cost.
struct PlanNode {
  enum class Kind { kScan, kFilter, kJoin, kGroupBy, kSort };

  Kind kind = Kind::kScan;

  // --- kScan: a base range variable with pushed-down local predicates.
  int rel_id = -1;
  std::vector<Predicate> scan_filter;

  // --- kFilter: residual predicates over `left` (used for predicates on a
  // composite input, e.g. a deferred comparison against a view's aggregate).
  std::vector<Predicate> filter_preds;

  // --- kJoin: left is the outer input. `left_outer` preserves unmatched
  // left rows, padding the right columns with NULLs (the outer-join
  // extension of the paper's footnote 3 / [CS96]).
  JoinAlgo algo = JoinAlgo::kBlockNestedLoop;
  bool left_outer = false;
  PlanPtr left;
  PlanPtr right;
  std::vector<Predicate> join_preds;

  // --- kGroupBy over `left`.
  GroupBySpec group_by;

  // --- kSort over `left` (final ORDER BY).
  std::vector<OrderKey> sort_keys;

  // --- Common annotations.
  RowLayout output;
  RelEstimate est;
  double width = 0.0;   // output row bytes
  double cost = 0.0;    // cumulative estimated IO (pages)

  double OutputPages() const {
    return CostModel::Pages(est.rows, static_cast<int64_t>(width));
  }
};

/// Constructs annotated plan nodes: computes layouts (projecting to the
/// columns needed downstream), estimates, and costs. One builder per query.
class PlanBuilder {
 public:
  explicit PlanBuilder(const Query& query) : query_(&query) {}

  /// Scan of range variable `rel_id` with `local_preds` applied during the
  /// scan; the output keeps only columns in `needed`.
  PlanPtr Scan(int rel_id, std::vector<Predicate> local_preds,
               const std::set<ColId>& needed) const;

  /// Residual filter; layout unchanged.
  PlanPtr Filter(PlanPtr input, std::vector<Predicate> preds) const;

  /// Join with a specific algorithm. `left` is the outer input.
  PlanPtr Join(JoinAlgo algo, PlanPtr left, PlanPtr right,
               std::vector<Predicate> preds,
               const std::set<ColId>& needed) const;

  /// Left outer join: every left row survives; unmatched ones are padded
  /// with NULLs on the right. Lowered to the hash or nested-loop operator
  /// in outer mode.
  PlanPtr LeftOuterJoin(PlanPtr left, PlanPtr right,
                        std::vector<Predicate> preds,
                        const std::set<ColId>& needed) const;

  /// Tries every admissible join algorithm (hash/merge need at least one
  /// equi-join conjunct) and returns the cheapest.
  PlanPtr BestJoin(PlanPtr left, PlanPtr right, std::vector<Predicate> preds,
                   const std::set<ColId>& needed) const;

  /// Group-by over `input`; output layout is (grouping + agg outputs)
  /// intersected with `needed` (grouping columns stay in the spec even when
  /// projected away).
  PlanPtr GroupBy(PlanPtr input, GroupBySpec spec,
                  const std::set<ColId>& needed) const;

  /// Final projection to exactly `select` (order preserved).
  PlanPtr Project(PlanPtr input, const std::vector<ColId>& select) const;

  /// Final ORDER BY: external sort of the result.
  PlanPtr Sort(PlanPtr input, std::vector<OrderKey> keys) const;

  const Query& query() const { return *query_; }

 private:
  const Query* query_;
};

/// One-line label of a single node — kind, algorithm, predicates — without
/// estimates or indentation (shared by PlanToString and EXPLAIN ANALYZE).
std::string PlanNodeLabel(const PlanPtr& plan, const Query& query);

/// Indented tree rendering with per-node algorithm, estimated rows and
/// cumulative cost.
std::string PlanToString(const PlanPtr& plan, const Query& query);

}  // namespace aggview

#endif  // AGGVIEW_OPTIMIZER_PLAN_H_
