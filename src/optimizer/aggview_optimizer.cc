#include "optimizer/aggview_optimizer.h"

#include <algorithm>
#include <functional>

#include "analysis/analyzer.h"
#include "common/string_util.h"
#include "optimizer/traditional.h"
#include "transform/propagate.h"
#include "transform/pullup.h"
#include "transform/pushdown.h"

namespace aggview {

namespace {

/// Columns referenced by the top block: its predicates, G0 (grouping,
/// aggregate arguments, HAVING) and the select list.
std::set<ColId> TopReferences(const Query& query) {
  std::set<ColId> refs;
  for (const Predicate& p : query.predicates()) {
    for (ColId c : p.Columns()) refs.insert(c);
  }
  if (query.top_group_by().has_value()) {
    const GroupBySpec& g0 = *query.top_group_by();
    refs.insert(g0.grouping.begin(), g0.grouping.end());
    for (const AggregateCall& a : g0.aggregates) {
      refs.insert(a.args.begin(), a.args.end());
    }
    for (const Predicate& p : g0.having) {
      for (ColId c : p.Columns()) refs.insert(c);
    }
  }
  refs.insert(query.select_list().begin(), query.select_list().end());
  return refs;
}

/// Candidate pull-up subsets W for one view (Section 5.3's restrictions:
/// shared predicate, at most `max_pullup` relations). Always contains ∅.
std::vector<std::set<int>> CandidatePullSets(const Query& query,
                                             size_t view_idx,
                                             const OptimizerOptions& options) {
  std::vector<std::set<int>> result = {{}};
  if (options.max_pullup <= 0 || query.views().empty()) return result;
  const AggView& view = query.views()[view_idx];

  std::set<std::set<int>> seen = {{}};
  size_t frontier_begin = 0;
  while (frontier_begin < result.size()) {
    size_t frontier_end = result.size();
    for (size_t f = frontier_begin; f < frontier_end; ++f) {
      std::set<int> base = result[f];
      if (static_cast<int>(base.size()) >= options.max_pullup) continue;
      for (int rel : query.base_rels()) {
        if (base.count(rel) > 0) continue;
        if (options.require_shared_predicate &&
            !SharesPredicateWithView(query, view, base, rel)) {
          continue;
        }
        std::set<int> extended = base;
        extended.insert(rel);
        if (seen.insert(extended).second) result.push_back(std::move(extended));
      }
    }
    frontier_begin = frontier_end;
  }
  return result;
}

std::string DescribeAssignment(const Query& query,
                               const std::vector<std::set<int>>& assignment) {
  std::string out;
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (i > 0) out += "; ";
    out += "W(" + query.views()[i].name + ")={";
    bool first = true;
    for (int rel : assignment[i]) {
      if (!first) out += ",";
      out += query.range_var(rel).alias;
      first = false;
    }
    out += "}";
  }
  if (assignment.empty()) out = "single block";
  return out;
}

/// Optimizes one fully-rewritten query (views already extended by pull-up):
/// phase 1 per view, phase 2 over composites + remaining base relations.
Result<PlanPtr> OptimizeRewritten(Query* query, const OptimizerOptions& options,
                                  EnumerationCounters* counters) {
  std::set<ColId> top_refs = TopReferences(*query);

  // Paranoid mode: analyze every candidate at DP-table insertion time and
  // re-verify every early group-by placement certificate. The hook captures
  // `query` by pointer; it outlives both OptimizeBlock calls below.
  EnumeratorOptions enum_options = options.enumerator;
  if (options.paranoid) {
    enum_options.verify_certificates = true;
    const Query* q = query;
    AnalysisOptions analysis;
    analysis.dataflow = options.paranoid_dataflow;
    enum_options.dp_check = [q, analysis](const PlanPtr& plan) {
      return AnalyzePlan(plan, *q, analysis);
    };
  }

  BlockSpec top;
  // Phase 1: each aggregate view becomes a composite relation.
  for (const AggView& view : query->views()) {
    BlockSpec view_block;
    for (int rel : view.spj.rels) {
      BlockRel br;
      br.name = query->range_var(rel).alias;
      br.scan_rel = rel;
      view_block.rels.push_back(std::move(br));
    }
    view_block.predicates = view.spj.predicates;
    view_block.group_by = view.group_by;
    for (ColId c : view.OutputColumns()) {
      if (top_refs.count(c) > 0) view_block.needed_output.insert(c);
    }
    AGGVIEW_ASSIGN_OR_RETURN(
        PlanPtr composite,
        OptimizeBlock(*query, &query->columns(), view_block,
                      enum_options, counters));
    BlockRel br;
    br.name = view.name;
    br.composite = composite;
    br.keys.push_back(view.group_by.grouping);
    top.rels.push_back(std::move(br));
  }

  // Phase 2: the top block over composites and remaining base relations.
  for (int rel : query->base_rels()) {
    BlockRel br;
    br.name = query->range_var(rel).alias;
    br.scan_rel = rel;
    top.rels.push_back(std::move(br));
  }
  top.predicates = query->predicates();
  top.group_by = query->top_group_by();
  top.needed_output.insert(query->select_list().begin(),
                           query->select_list().end());

  AGGVIEW_ASSIGN_OR_RETURN(
      PlanPtr plan, OptimizeBlock(*query, &query->columns(), top,
                                  enum_options, counters));
  PlanBuilder builder(*query);
  plan = builder.Project(plan, query->select_list());
  return builder.Sort(plan, query->order_by());
}

}  // namespace

Result<OptimizedQuery> OptimizeQueryWithAggViews(const Query& query,
                                                 const OptimizerOptions& options) {
  AGGVIEW_RETURN_NOT_OK(query.Validate());

  // Preprocessing: predicate propagation across blocks (the prior art).
  Query base = query;
  if (options.propagate_predicates) {
    AGGVIEW_ASSIGN_OR_RETURN(base, PropagatePredicates(base));
  }

  // Section 5.3/5.4 step 0: shrink every view to its minimal invariant set;
  // the moved relations become part of B'. In paranoid mode every shrink
  // emits an invariant-grouping certificate that is verified on the spot
  // (against the pre-shrink query — the certificate describes the view as it
  // was when the claim was made) and kept for the audit trail.
  std::vector<InvariantCertificate> shrink_certs;
  int64_t base_certificates_verified = 0;
  if (options.shrink_views) {
    for (size_t i = 0; i < base.views().size(); ++i) {
      InvariantCertificate cert;
      Query before = base;
      AGGVIEW_ASSIGN_OR_RETURN(
          base, ShrinkViewToInvariantSet(base, i, nullptr,
                                         options.paranoid ? &cert : nullptr));
      if (options.paranoid) {
        AGGVIEW_RETURN_NOT_OK(VerifyInvariantCertificate(before, cert));
        ++base_certificates_verified;
        if (!cert.removed.empty()) shrink_certs.push_back(std::move(cert));
      }
    }
  }

  // Enumerate W assignments (one pull-up subset per view, mutually
  // disjoint).
  std::vector<std::vector<std::set<int>>> per_view_sets;
  for (size_t i = 0; i < base.views().size(); ++i) {
    per_view_sets.push_back(CandidatePullSets(base, i, options));
  }

  std::vector<std::vector<std::set<int>>> assignments;
  std::vector<std::set<int>> current(per_view_sets.size());
  std::function<void(size_t)> expand = [&](size_t view) {
    if (static_cast<int>(assignments.size()) >= options.max_assignments) return;
    if (view == per_view_sets.size()) {
      assignments.push_back(current);
      return;
    }
    for (const std::set<int>& w : per_view_sets[view]) {
      bool disjoint = true;
      for (size_t prev = 0; prev < view && disjoint; ++prev) {
        for (int rel : w) {
          if (current[prev].count(rel) > 0) {
            disjoint = false;
            break;
          }
        }
      }
      if (!disjoint) continue;
      current[view] = w;
      expand(view + 1);
      current[view].clear();
    }
  };
  expand(0);
  if (assignments.empty()) assignments.push_back(current);

  OptimizedQuery best(base);
  EnumerationCounters counters;
  counters.certificates_verified += base_certificates_verified;

  for (const auto& assignment : assignments) {
    Query rewritten = base;
    TransformationAudit audit;
    audit.invariants = shrink_certs;
    bool feasible = true;
    for (size_t i = 0; i < assignment.size(); ++i) {
      if (assignment[i].empty()) continue;
      PullUpCertificate cert;
      auto pulled = PullUpIntoView(rewritten, i, assignment[i],
                                   options.paranoid ? &cert : nullptr);
      if (!pulled.ok()) {
        feasible = false;
        break;
      }
      rewritten = std::move(pulled).value();
      if (options.paranoid) {
        // The pulled relations' keys and the extended block's predicates are
        // recorded in the certificate; re-prove Definition 1's side condition
        // from the catalog before costing anything built on this rewrite.
        AGGVIEW_RETURN_NOT_OK(VerifyPullUpCertificate(rewritten, cert));
        ++counters.certificates_verified;
        audit.pullups.push_back(std::move(cert));
      }
    }
    if (!feasible) continue;

    auto plan = OptimizeRewritten(&rewritten, options, &counters);
    if (!plan.ok()) return plan.status();

    std::string description = DescribeAssignment(base, assignment);
    best.alternatives.push_back({description, (*plan)->cost});
    if (best.plan == nullptr || (*plan)->cost < best.plan->cost) {
      best.plan = std::move(plan).value();
      best.query = std::move(rewritten);
      best.description = std::move(description);
      best.audit = std::move(audit);
    }
  }

  if (best.plan == nullptr) {
    return Status::Internal("no feasible plan found");
  }

  // Unconditional no-worse guarantee: fall back to the traditional plan when
  // it is cheaper (the search space above includes it in spirit; estimation
  // asymmetries can not make us regress past it with this check in place).
  if (options.include_traditional_alternative) {
    OptimizerOptions traditional_options = TraditionalOptions();
    traditional_options.paranoid = options.paranoid;
    traditional_options.paranoid_dataflow = options.paranoid_dataflow;
    AGGVIEW_ASSIGN_OR_RETURN(
        OptimizedQuery traditional,
        OptimizeQueryWithAggViews(query, traditional_options));
    counters.joins_considered += traditional.counters.joins_considered;
    counters.groupby_placements += traditional.counters.groupby_placements;
    counters.subsets_stored += traditional.counters.subsets_stored;
    counters.plans_checked += traditional.counters.plans_checked;
    counters.certificates_verified += traditional.counters.certificates_verified;
    best.alternatives.push_back({"traditional two-phase",
                                 traditional.plan->cost});
    if (traditional.plan->cost < best.plan->cost) {
      best.plan = traditional.plan;
      best.query = std::move(traditional.query);
      best.description = "traditional two-phase";
      best.audit = std::move(traditional.audit);
    }
  }

  if (options.paranoid) {
    // Belt and braces: the winner was already checked at every DP insertion,
    // but Project/Sort are added after the enumerator — analyze the full
    // final plan and re-verify the audit trail once more.
    AnalysisOptions analysis;
    analysis.dataflow = options.paranoid_dataflow;
    AGGVIEW_RETURN_NOT_OK(AnalyzePlan(best.plan, best.query, analysis));
    AGGVIEW_RETURN_NOT_OK(VerifyAudit(best.query, best.audit));
  }

  best.counters = counters;
  return best;
}

}  // namespace aggview
