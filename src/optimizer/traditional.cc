#include "optimizer/traditional.h"

namespace aggview {

OptimizerOptions TraditionalOptions() {
  OptimizerOptions options;
  options.enumerator.greedy_aggregation = false;
  options.enumerator.enable_invariant = false;
  options.enumerator.enable_coalescing = false;
  options.max_pullup = 0;
  options.shrink_views = false;
  options.include_traditional_alternative = false;
  return options;
}

Result<OptimizedQuery> OptimizeTraditional(const Query& query) {
  return OptimizeQueryWithAggViews(query, TraditionalOptions());
}

}  // namespace aggview
