#include "optimizer/plan_validator.h"

#include <algorithm>

#include "common/string_util.h"

namespace aggview {

namespace {

Status NodeError(const PlanPtr& plan, const Query& query,
                 const std::string& what) {
  return Status::Internal(what + "\nin node:\n" + PlanToString(plan, query));
}

Status CheckColumns(const PlanPtr& plan, const Query& query,
                    const std::set<ColId>& referenced,
                    const std::set<ColId>& available, const char* what) {
  for (ColId c : referenced) {
    if (available.count(c) == 0) {
      return NodeError(plan, query,
                       StrFormat("%s references unavailable column '%s'", what,
                                 query.columns().name(c).c_str()));
    }
  }
  return Status::OK();
}

Status Validate(const PlanPtr& plan, const Query& query) {
  if (plan == nullptr) return Status::Internal("null plan node");
  if (plan->est.rows < 0.0) {
    return NodeError(plan, query, "negative row estimate");
  }
  if (plan->cost < 0.0) {
    return NodeError(plan, query, "negative cost");
  }

  std::set<ColId> outputs(plan->output.columns().begin(),
                          plan->output.columns().end());

  switch (plan->kind) {
    case PlanNode::Kind::kScan: {
      const RangeVar& rv = query.range_var(plan->rel_id);
      std::set<ColId> table_cols = rv.ColumnSet();
      AGGVIEW_RETURN_NOT_OK(CheckColumns(
          plan, query, ConjunctionColumns(plan->scan_filter), table_cols,
          "scan filter"));
      AGGVIEW_RETURN_NOT_OK(
          CheckColumns(plan, query, outputs, table_cols, "scan output"));
      return Status::OK();
    }
    case PlanNode::Kind::kFilter: {
      if (plan->left == nullptr) {
        return NodeError(plan, query, "filter without input");
      }
      AGGVIEW_RETURN_NOT_OK(Validate(plan->left, query));
      std::set<ColId> in(plan->left->output.columns().begin(),
                         plan->left->output.columns().end());
      AGGVIEW_RETURN_NOT_OK(CheckColumns(
          plan, query, ConjunctionColumns(plan->filter_preds), in,
          "filter predicate"));
      AGGVIEW_RETURN_NOT_OK(
          CheckColumns(plan, query, outputs, in, "filter output"));
      if (plan->cost + 1e-9 < plan->left->cost) {
        return NodeError(plan, query, "cost decreased at filter");
      }
      return Status::OK();
    }
    case PlanNode::Kind::kJoin: {
      if (plan->left == nullptr || plan->right == nullptr) {
        return NodeError(plan, query, "join missing an input");
      }
      AGGVIEW_RETURN_NOT_OK(Validate(plan->left, query));
      AGGVIEW_RETURN_NOT_OK(Validate(plan->right, query));
      std::set<ColId> in(plan->left->output.columns().begin(),
                         plan->left->output.columns().end());
      in.insert(plan->right->output.columns().begin(),
                plan->right->output.columns().end());
      AGGVIEW_RETURN_NOT_OK(CheckColumns(
          plan, query, ConjunctionColumns(plan->join_preds), in,
          "join predicate"));
      AGGVIEW_RETURN_NOT_OK(
          CheckColumns(plan, query, outputs, in, "join output"));
      if (plan->algo != JoinAlgo::kBlockNestedLoop) {
        bool has_equi = false;
        for (const Predicate& p : plan->join_preds) {
          ColId a, b;
          if (!p.AsColumnEquality(&a, &b)) continue;
          bool left_a = plan->left->output.Contains(a);
          bool right_b = plan->right->output.Contains(b);
          bool left_b = plan->left->output.Contains(b);
          bool right_a = plan->right->output.Contains(a);
          if ((left_a && right_b) || (left_b && right_a)) {
            has_equi = true;
            break;
          }
        }
        if (!has_equi) {
          return NodeError(plan, query,
                           "hash/merge join without equi-join conjunct");
        }
      }
      if (plan->cost + 1e-9 < std::max(plan->left->cost, plan->right->cost)) {
        return NodeError(plan, query, "cost decreased at join");
      }
      return Status::OK();
    }
    case PlanNode::Kind::kSort: {
      if (plan->left == nullptr) {
        return NodeError(plan, query, "sort without input");
      }
      AGGVIEW_RETURN_NOT_OK(Validate(plan->left, query));
      std::set<ColId> in(plan->left->output.columns().begin(),
                         plan->left->output.columns().end());
      std::set<ColId> key_cols;
      for (const OrderKey& key : plan->sort_keys) key_cols.insert(key.column);
      AGGVIEW_RETURN_NOT_OK(
          CheckColumns(plan, query, key_cols, in, "sort key"));
      if (plan->cost + 1e-9 < plan->left->cost) {
        return NodeError(plan, query, "cost decreased at sort");
      }
      return Status::OK();
    }
    case PlanNode::Kind::kGroupBy: {
      if (plan->left == nullptr) {
        return NodeError(plan, query, "group-by without input");
      }
      AGGVIEW_RETURN_NOT_OK(Validate(plan->left, query));
      std::set<ColId> in(plan->left->output.columns().begin(),
                         plan->left->output.columns().end());
      const GroupBySpec& gb = plan->group_by;
      std::set<ColId> grouping_refs(gb.grouping.begin(), gb.grouping.end());
      AGGVIEW_RETURN_NOT_OK(
          CheckColumns(plan, query, grouping_refs, in, "grouping column"));
      AGGVIEW_RETURN_NOT_OK(
          CheckColumns(plan, query, gb.AggArgSet(), in, "aggregate argument"));
      std::set<ColId> gb_outputs(gb.grouping.begin(), gb.grouping.end());
      for (const AggregateCall& a : gb.aggregates) gb_outputs.insert(a.output);
      AGGVIEW_RETURN_NOT_OK(CheckColumns(
          plan, query, ConjunctionColumns(gb.having), gb_outputs, "HAVING"));
      AGGVIEW_RETURN_NOT_OK(
          CheckColumns(plan, query, outputs, gb_outputs, "group-by output"));
      // A scalar aggregate legitimately emits one row over empty input;
      // grouped output is bounded by the input.
      double gb_cap = gb.grouping.empty() ? std::max(plan->left->est.rows, 1.0)
                                          : plan->left->est.rows;
      if (plan->est.rows > gb_cap + 1e-6) {
        return NodeError(plan, query, "group-by increased the row estimate");
      }
      if (plan->cost + 1e-9 < plan->left->cost) {
        return NodeError(plan, query, "cost decreased at group-by");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown plan node kind");
}

}  // namespace

Status ValidatePlan(const PlanPtr& plan, const Query& query) {
  return Validate(plan, query);
}

}  // namespace aggview
