#include "optimizer/join_enumerator.h"

#include <algorithm>
#include <array>
#include <optional>
#include <unordered_map>

#include "analysis/analyzer.h"
#include "transform/coalescing.h"
#include "transform/unsound.h"

namespace aggview {

namespace {

/// How far the block's group-by has been applied along a partial plan.
enum class AggState { kNone, kPartial, kFinal };

struct DpEntry {
  PlanPtr plan;
  AggState state = AggState::kNone;
  /// HAVING conjuncts not evaluable at the pushed group-by (kFinal only);
  /// applied as a filter once all joins are done.
  std::vector<Predicate> pending_having;
  /// Combining aggregates for the top group-by (kPartial only).
  std::vector<AggregateCall> final_aggs;
};

class Enumerator {
 public:
  Enumerator(const Query& query, ColumnCatalog* columns,
             const BlockSpec& block, const EnumeratorOptions& options,
             EnumerationCounters* counters)
      : query_(query),
        columns_(columns),
        block_(block),
        options_(options),
        counters_(counters),
        builder_(query) {}

  Result<PlanPtr> Run();

 private:
  using Mask = uint32_t;

  std::set<ColId> ColsOf(Mask mask) const {
    std::set<ColId> out;
    for (int i = 0; i < n_; ++i) {
      if (mask & (Mask{1} << i)) {
        out.insert(rel_cols_[static_cast<size_t>(i)].begin(),
                   rel_cols_[static_cast<size_t>(i)].end());
      }
    }
    return out;
  }

  /// Columns the plan for `mask` must still carry: consumer needs, group-by
  /// references, and every column of a predicate not yet fully applicable.
  std::set<ColId> NeededFor(Mask mask) const {
    std::set<ColId> needed = block_.needed_output;
    needed.insert(gb_refs_.begin(), gb_refs_.end());
    std::set<ColId> have = ColsOf(mask);
    for (const Predicate& p : block_.predicates) {
      if (!p.BoundBy(have)) {
        for (ColId c : p.Columns()) needed.insert(c);
      }
    }
    return needed;
  }

  /// Predicates that become applicable exactly when `next` joins `mask`.
  std::vector<Predicate> PredsForJoin(Mask mask, int next) const {
    std::set<ColId> before = ColsOf(mask);
    std::set<ColId> leaf = rel_cols_[static_cast<size_t>(next)];
    std::set<ColId> after = before;
    after.insert(leaf.begin(), leaf.end());
    std::vector<Predicate> out;
    for (const Predicate& p : block_.predicates) {
      if (p.BoundBy(after) && !p.BoundBy(before) && !p.BoundBy(leaf)) {
        out.push_back(p);
      }
    }
    return out;
  }

  Result<PlanPtr> LeafPlan(int i) const;

  bool InvariantApplicableAt(Mask mask) const;
  bool CoalescingApplicableAt(Mask mask) const;

  /// Applies the block group-by in invariant (final) form on `entry`'s plan,
  /// restricted to the columns of `mask`.
  Result<DpEntry> PushInvariant(const DpEntry& entry, Mask mask) const;
  /// Applies a coalescing pre-aggregation on `entry`'s plan.
  Result<DpEntry> PushCoalescing(const DpEntry& entry, Mask mask) const;

  /// Builds the BlockRelClaims of `mask`'s relations (in = true) or its
  /// complement (in = false), for certificate emission.
  std::vector<BlockRelClaim> ClaimsOf(Mask mask, bool in) const {
    std::vector<BlockRelClaim> out;
    for (int i = 0; i < n_; ++i) {
      bool member = (mask & (Mask{1} << i)) != 0;
      if (member != in) continue;
      const BlockRel& rel = block_.rels[static_cast<size_t>(i)];
      BlockRelClaim claim;
      claim.name = rel.name;
      claim.scan_rel = rel.scan_rel;
      claim.composite = rel.composite;
      out.push_back(std::move(claim));
    }
    return out;
  }

  /// The best join of `left` (for `mask`) with relation `next`, across join
  /// algorithms. `extra_needed` keeps columns NeededFor does not know about
  /// (the partial-aggregate columns of a coalesced subplan).
  Result<PlanPtr> JoinStep(const PlanPtr& left, Mask mask, int next,
                           const PlanPtr& leaf,
                           const std::set<ColId>& extra_needed) const;

  /// Finishes the block: applies the (remaining) group-by / pending having.
  Result<PlanPtr> Complete(const DpEntry& entry) const;

  /// Candidate admission: keep `cand` over `incumbent` when cheaper.
  static bool Better(const DpEntry& cand, const DpEntry& incumbent) {
    return cand.plan->cost < incumbent.plan->cost;
  }

  const Query& query_;
  ColumnCatalog* columns_;
  const BlockSpec& block_;
  EnumeratorOptions options_;
  EnumerationCounters* counters_;
  PlanBuilder builder_;

  int n_ = 0;
  std::vector<std::set<ColId>> rel_cols_;
  std::vector<RelShape> shapes_;
  std::set<size_t> removable_;
  /// Exact per-mask invariant legality (see InvariantApplicableAt).
  mutable std::unordered_map<Mask, bool> invariant_ok_;
  std::set<ColId> gb_refs_;
  std::set<ColId> agg_args_;
  /// One DP lane per aggregation state: plans that have not aggregated,
  /// plans carrying a coalescing pre-aggregation, and plans whose group-by
  /// is fully applied are not comparable by cost alone (their completions
  /// differ), so each competes within its own lane. This is the
  /// linear-aggregate-join-tree space of Section 5.2 with per-state
  /// memoization.
  std::unordered_map<Mask, std::array<std::optional<DpEntry>, 3>> dp_;
};

Result<PlanPtr> Enumerator::LeafPlan(int i) const {
  const BlockRel& rel = block_.rels[static_cast<size_t>(i)];
  const std::set<ColId>& cols = rel_cols_[static_cast<size_t>(i)];
  std::vector<Predicate> local;
  for (const Predicate& p : block_.predicates) {
    if (p.BoundBy(cols)) local.push_back(p);
  }
  std::set<ColId> needed = NeededFor(Mask{1} << i);
  if (rel.scan_rel >= 0) {
    return builder_.Scan(rel.scan_rel, std::move(local), needed);
  }
  if (rel.composite == nullptr) {
    return Status::InvalidArgument("block relation '" + rel.name +
                                   "' has neither a scan target nor a plan");
  }
  return builder_.Filter(rel.composite, std::move(local));
}

bool Enumerator::InvariantApplicableAt(Mask mask) const {
  if (!block_.group_by.has_value()) return false;
  Mask full = (Mask{1} << n_) - 1;
  if (mask == full) return false;  // that is just the normal completion
  for (int i = 0; i < n_; ++i) {
    if ((mask & (Mask{1} << i)) == 0 &&
        removable_.count(static_cast<size_t>(i)) == 0) {
      return false;
    }
  }
  // Membership in the global removable set is necessary but not sufficient:
  // the fixpoint may have removed relation A only after relation B was
  // already gone, while this mask retains B. (The certificate verifier found
  // exactly such a mask: a crossing predicate reached a retained non-grouping
  // column that the fixpoint order had eliminated first.) Re-run the
  // elimination against exactly this retained set. The mutation harness
  // reinjects the old trust-the-global-set behaviour to prove the
  // small-scope prover rediscovers the bug.
  if (UnsoundReinjectionActive(UnsoundReinjection::kTrustGlobalRemovable)) {
    return true;
  }
  auto cached = invariant_ok_.find(mask);
  if (cached != invariant_ok_.end()) return cached->second;
  std::set<size_t> pending;
  for (int i = 0; i < n_; ++i) {
    if ((mask & (Mask{1} << i)) == 0) pending.insert(static_cast<size_t>(i));
  }
  bool progress = true;
  while (!pending.empty() && progress) {
    progress = false;
    for (size_t candidate : pending) {
      std::set<ColId> retained_cols;
      for (int i = 0; i < n_; ++i) {
        size_t u = static_cast<size_t>(i);
        if (u == candidate) continue;
        if ((mask & (Mask{1} << i)) != 0 || pending.count(u) > 0) {
          retained_cols.insert(rel_cols_[u].begin(), rel_cols_[u].end());
        }
      }
      if (CanMoveGroupByPastShape(shapes_[candidate], retained_cols,
                                  block_.predicates, *block_.group_by)) {
        pending.erase(candidate);
        progress = true;
        break;
      }
    }
  }
  bool ok = pending.empty();
  invariant_ok_[mask] = ok;
  return ok;
}

bool Enumerator::CoalescingApplicableAt(Mask mask) const {
  if (!block_.group_by.has_value()) return false;
  Mask full = (Mask{1} << n_) - 1;
  if (mask == full) return false;
  return CoalescingApplicable(*block_.group_by, ColsOf(mask));
}

Result<DpEntry> Enumerator::PushInvariant(const DpEntry& entry,
                                          Mask mask) const {
  const GroupBySpec& gb = *block_.group_by;
  std::set<ColId> have = ColsOf(mask);

  if (options_.verify_certificates) {
    // Re-prove IG1-IG3 for the relations the group-by is moved past before
    // trusting the placement.
    InvariantCertificate cert;
    cert.group_by = gb;
    cert.predicates = block_.predicates;
    cert.removed = ClaimsOf(mask, /*in=*/false);
    cert.retained = ClaimsOf(mask, /*in=*/true);
    AGGVIEW_RETURN_NOT_OK(VerifyInvariantCertificate(query_, cert));
    if (counters_ != nullptr) ++counters_->certificates_verified;
  }

  GroupBySpec pushed;
  for (ColId g : gb.grouping) {
    if (have.count(g) > 0) pushed.grouping.push_back(g);
  }
  pushed.aggregates = gb.aggregates;
  std::set<ColId> outputs(pushed.grouping.begin(), pushed.grouping.end());
  for (const AggregateCall& a : pushed.aggregates) outputs.insert(a.output);

  DpEntry out;
  out.state = AggState::kFinal;
  for (const Predicate& p : gb.having) {
    if (p.BoundBy(outputs)) {
      pushed.having.push_back(p);
    } else {
      out.pending_having.push_back(p);
    }
  }

  std::set<ColId> needed = NeededFor(mask);
  needed.insert(outputs.begin(), outputs.end());
  out.plan = builder_.GroupBy(entry.plan, std::move(pushed), needed);
  if (counters_ != nullptr) ++counters_->groupby_placements;
  return out;
}

Result<DpEntry> Enumerator::PushCoalescing(const DpEntry& entry,
                                           Mask mask) const {
  const GroupBySpec& gb = *block_.group_by;
  std::set<ColId> have = ColsOf(mask);

  // Columns of this subset that later predicates still reference must be
  // carried through the pre-aggregation as extra grouping columns.
  std::set<ColId> carry;
  for (const Predicate& p : block_.predicates) {
    if (!p.BoundBy(have)) {
      for (ColId c : p.Columns()) {
        if (have.count(c) > 0) carry.insert(c);
      }
    }
  }
  CoalescingCertificate cert;
  AGGVIEW_ASSIGN_OR_RETURN(
      CoalescingSplit split,
      SplitForCoalescing(gb, have, carry, columns_,
                         options_.verify_certificates ? &cert : nullptr));
  if (options_.verify_certificates) {
    AGGVIEW_RETURN_NOT_OK(VerifyCoalescingCertificate(query_, cert));
    if (counters_ != nullptr) ++counters_->certificates_verified;
  }

  std::set<ColId> needed = NeededFor(mask);
  for (ColId g : split.partial.grouping) needed.insert(g);
  for (const AggregateCall& a : split.partial.aggregates) {
    needed.insert(a.output);
  }

  DpEntry out;
  out.state = AggState::kPartial;
  out.final_aggs = std::move(split.final_aggregates);
  out.plan = builder_.GroupBy(entry.plan, std::move(split.partial), needed);
  if (counters_ != nullptr) ++counters_->groupby_placements;
  return out;
}

Result<PlanPtr> Enumerator::JoinStep(const PlanPtr& left, Mask mask, int next,
                                     const PlanPtr& leaf,
                                     const std::set<ColId>& extra_needed) const {
  std::vector<Predicate> preds = PredsForJoin(mask, next);
  std::set<ColId> needed = NeededFor(mask | (Mask{1} << next));
  needed.insert(extra_needed.begin(), extra_needed.end());
  if (counters_ != nullptr) ++counters_->joins_considered;
  return builder_.BestJoin(left, leaf, std::move(preds), needed);
}

Result<PlanPtr> Enumerator::Complete(const DpEntry& entry) const {
  switch (entry.state) {
    case AggState::kNone: {
      if (!block_.group_by.has_value()) return entry.plan;
      std::set<ColId> needed = block_.needed_output;
      for (ColId g : block_.group_by->grouping) needed.insert(g);
      for (const AggregateCall& a : block_.group_by->aggregates) {
        needed.insert(a.output);
      }
      return builder_.GroupBy(entry.plan, *block_.group_by, needed);
    }
    case AggState::kPartial: {
      GroupBySpec final_spec;
      final_spec.grouping = block_.group_by->grouping;
      final_spec.aggregates = entry.final_aggs;
      final_spec.having = block_.group_by->having;
      std::set<ColId> needed = block_.needed_output;
      for (ColId g : final_spec.grouping) needed.insert(g);
      for (const AggregateCall& a : final_spec.aggregates) {
        needed.insert(a.output);
      }
      return builder_.GroupBy(entry.plan, std::move(final_spec), needed);
    }
    case AggState::kFinal:
      return builder_.Filter(entry.plan, entry.pending_having);
  }
  return Status::Internal("unknown aggregation state");
}

Result<PlanPtr> Enumerator::Run() {
  n_ = static_cast<int>(block_.rels.size());
  if (n_ == 0) return Status::InvalidArgument("block has no relations");
  if (n_ > 20) {
    return Status::InvalidArgument("block too large for exhaustive DP (>20)");
  }

  // Per-relation available columns and shapes.
  std::vector<RelShape>& shapes = shapes_;
  for (int i = 0; i < n_; ++i) {
    const BlockRel& rel = block_.rels[static_cast<size_t>(i)];
    RelShape shape;
    if (rel.scan_rel >= 0) {
      shape = ShapeOfRangeVar(query_, rel.scan_rel);
    } else {
      for (ColId c : rel.composite->output.columns()) shape.cols.insert(c);
      shape.keys = rel.keys;
    }
    if (!rel.keys.empty() && rel.scan_rel >= 0) {
      // Extra caller-declared keys — dropping any the catalog already
      // declared, so key-based reasoning downstream (pull-up key grouping,
      // removable-shape detection) never sees the same key twice.
      for (const std::vector<ColId>& key : rel.keys) {
        if (std::find(shape.keys.begin(), shape.keys.end(), key) ==
            shape.keys.end()) {
          shape.keys.push_back(key);
        }
      }
    }
    rel_cols_.push_back(shape.cols);
    shapes.push_back(std::move(shape));
  }
  if (block_.group_by.has_value()) {
    removable_ = RemovableShapes(shapes, block_.predicates, *block_.group_by);
    gb_refs_.insert(block_.group_by->grouping.begin(),
                    block_.group_by->grouping.end());
    agg_args_ = block_.group_by->AggArgSet();
    gb_refs_.insert(agg_args_.begin(), agg_args_.end());
    for (const Predicate& p : block_.group_by->having) {
      for (ColId c : p.Columns()) gb_refs_.insert(c);
    }
  }

  bool greedy = options_.greedy_aggregation && block_.group_by.has_value();

  auto lane_of = [](AggState state) {
    return static_cast<size_t>(state);
  };
  auto admit = [&](Mask mask, DpEntry entry) -> Status {
    // The paranoid debug hook fires on every candidate before it can enter
    // the DP table, so an illegal plan is caught at the insertion that
    // created it — with the offending subplan, not the assembled final plan.
    if (options_.dp_check) {
      if (counters_ != nullptr) ++counters_->plans_checked;
      AGGVIEW_RETURN_NOT_OK(options_.dp_check(entry.plan));
    }
    auto& lanes = dp_[mask];
    std::optional<DpEntry>& slot = lanes[lane_of(entry.state)];
    if (!slot.has_value() || Better(entry, *slot)) {
      bool fresh = !slot.has_value();
      slot = std::move(entry);
      if (fresh && counters_ != nullptr) ++counters_->subsets_stored;
    }
    return Status::OK();
  };

  // Leaf plans.
  std::vector<PlanPtr> leaves;
  for (int i = 0; i < n_; ++i) {
    AGGVIEW_ASSIGN_OR_RETURN(PlanPtr leaf, LeafPlan(i));
    leaves.push_back(leaf);
    DpEntry entry;
    entry.plan = leaf;
    AGGVIEW_RETURN_NOT_OK(admit(Mask{1} << i, std::move(entry)));
  }

  // Columns the default projection must keep for an entry's pending work:
  // partial-aggregate inputs of a coalesced subplan.
  auto extras_of = [](const DpEntry& entry) {
    std::set<ColId> extras;
    for (const AggregateCall& a : entry.final_aggs) {
      extras.insert(a.args.begin(), a.args.end());
    }
    return extras;
  };

  Mask full = (Mask{1} << n_) - 1;
  for (Mask mask = 1; mask <= full; ++mask) {
    if (dp_.find(mask) == dp_.end()) continue;

    // Early aggregation: promote the kNone entry into the aggregated lanes
    // of the same subset (processed below in the same iteration).
    if (greedy && n_ > 1 && mask != full) {
      std::optional<DpEntry> none_entry =
          dp_[mask][lane_of(AggState::kNone)];
      if (none_entry.has_value()) {
        if (options_.enable_invariant && InvariantApplicableAt(mask)) {
          AGGVIEW_ASSIGN_OR_RETURN(DpEntry v,
                                   PushInvariant(*none_entry, mask));
          AGGVIEW_RETURN_NOT_OK(admit(mask, std::move(v)));
        }
        if (options_.enable_coalescing && CoalescingApplicableAt(mask)) {
          AGGVIEW_ASSIGN_OR_RETURN(DpEntry v,
                                   PushCoalescing(*none_entry, mask));
          AGGVIEW_RETURN_NOT_OK(admit(mask, std::move(v)));
        }
      }
    }
    if (mask == full) break;

    // Cross products only when no connected extension exists.
    std::set<ColId> have = ColsOf(mask);
    std::vector<int> connected, others;
    for (int j = 0; j < n_; ++j) {
      if (mask & (Mask{1} << j)) continue;
      bool shares = false;
      for (const Predicate& p : block_.predicates) {
        if (p.References(have) &&
            p.References(rel_cols_[static_cast<size_t>(j)])) {
          shares = true;
          break;
        }
      }
      (shares ? connected : others).push_back(j);
    }
    const std::vector<int>& extensions = connected.empty() ? others : connected;

    // Copy the lanes: dp_ may rehash during insertions below.
    std::array<std::optional<DpEntry>, 3> lanes = dp_[mask];
    for (const std::optional<DpEntry>& entry : lanes) {
      if (!entry.has_value()) continue;
      std::set<ColId> extras = extras_of(*entry);
      for (int j : extensions) {
        Mask next_mask = mask | (Mask{1} << j);
        AGGVIEW_ASSIGN_OR_RETURN(
            PlanPtr joined,
            JoinStep(entry->plan, mask, j, leaves[static_cast<size_t>(j)],
                     extras));
        DpEntry cand;
        cand.plan = std::move(joined);
        cand.state = entry->state;
        cand.pending_having = entry->pending_having;
        cand.final_aggs = entry->final_aggs;
        AGGVIEW_RETURN_NOT_OK(admit(next_mask, std::move(cand)));
      }
    }
  }

  auto final_it = dp_.find(full);
  if (final_it == dp_.end()) {
    return Status::Internal("DP produced no plan for the full relation set");
  }
  // Complete every lane and keep the cheapest finished plan.
  PlanPtr best;
  for (const std::optional<DpEntry>& entry : final_it->second) {
    if (!entry.has_value()) continue;
    AGGVIEW_ASSIGN_OR_RETURN(PlanPtr finished, Complete(*entry));
    if (best == nullptr || finished->cost < best->cost) best = finished;
  }
  if (best == nullptr) {
    return Status::Internal("DP produced no completable plan");
  }
  return best;
}

}  // namespace

Result<PlanPtr> OptimizeBlock(const Query& query, ColumnCatalog* columns,
                              const BlockSpec& block,
                              const EnumeratorOptions& options,
                              EnumerationCounters* counters) {
  Enumerator e(query, columns, block, options, counters);
  return e.Run();
}

}  // namespace aggview
