#ifndef AGGVIEW_OPTIMIZER_PLAN_VALIDATOR_H_
#define AGGVIEW_OPTIMIZER_PLAN_VALIDATOR_H_

#include "optimizer/plan.h"

namespace aggview {

/// Structural validation of a physical plan, independent of execution:
///
///  - every column a node's predicates/aggregates reference is available in
///    the right place (scan filters against the table's columns, join
///    predicates against the concatenated child outputs, HAVING against the
///    group-by's outputs);
///  - every output column is actually produced by the node (scan outputs
///    come from the table, join outputs from the children, group-by outputs
///    from grouping + aggregates);
///  - hash/merge joins have at least one equi-join conjunct;
///  - estimates are sane (non-negative rows, costs monotone along children).
///
/// Used by the test suite after every optimizer invocation; ExecutePlan
/// would also catch most of these, but the validator pinpoints the node and
/// catches latent problems in plans that are costed yet never executed.
Status ValidatePlan(const PlanPtr& plan, const Query& query);

}  // namespace aggview

#endif  // AGGVIEW_OPTIMIZER_PLAN_VALIDATOR_H_
