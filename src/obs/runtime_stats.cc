#include "obs/runtime_stats.h"

#include <cstdio>

namespace aggview {

namespace {

std::string FmtMs(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

void OpStats::MergeFrom(const OpStats& other) {
  rows_produced += other.rows_produced;
  batches_produced += other.batches_produced;
  input_rows += other.input_rows;
  next_calls += other.next_calls;
  open_ns += other.open_ns;
  next_ns += other.next_ns;
  pages_charged += other.pages_charged;
  hash_build_rows += other.hash_build_rows;
  hash_probes += other.hash_probes;
  spill_pages += other.spill_pages;
  workers += other.workers;
}

std::string OpStatsToString(const OpStats& s) {
  std::string out = s.op_name + ": rows=" + std::to_string(s.rows_produced) +
                    " batches=" + std::to_string(s.batches_produced) +
                    " in=" + std::to_string(s.input_rows) +
                    " pages=" + std::to_string(s.pages_charged) +
                    " open=" + FmtMs(s.open_ns) + "ms next=" +
                    FmtMs(s.next_ns) + "ms";
  if (s.hash_build_rows > 0 || s.hash_probes > 0) {
    out += " build=" + std::to_string(s.hash_build_rows) +
           " probes=" + std::to_string(s.hash_probes);
  }
  if (s.spill_pages > 0) out += " spill=" + std::to_string(s.spill_pages);
  if (s.workers > 1) out += " workers=" + std::to_string(s.workers);
  return out;
}

}  // namespace aggview
