#include "obs/runtime_stats.h"

#include <cstdio>

namespace aggview {

namespace {

std::string FmtMs(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

std::string OpStatsToString(const OpStats& s) {
  std::string out = s.op_name + ": rows=" + std::to_string(s.rows_produced) +
                    " batches=" + std::to_string(s.batches_produced) +
                    " in=" + std::to_string(s.input_rows) +
                    " pages=" + std::to_string(s.pages_charged) +
                    " open=" + FmtMs(s.open_ns) + "ms next=" +
                    FmtMs(s.next_ns) + "ms";
  if (s.hash_build_rows > 0 || s.hash_probes > 0) {
    out += " build=" + std::to_string(s.hash_build_rows) +
           " probes=" + std::to_string(s.hash_probes);
  }
  if (s.spill_pages > 0) out += " spill=" + std::to_string(s.spill_pages);
  return out;
}

}  // namespace aggview
