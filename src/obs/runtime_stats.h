#ifndef AGGVIEW_OBS_RUNTIME_STATS_H_
#define AGGVIEW_OBS_RUNTIME_STATS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace aggview {

struct PlanNode;

/// Per-operator runtime counters, the raw material of EXPLAIN ANALYZE.
///
/// An operator updates its OpStats only when one was installed (see
/// Operator::set_stats); with no stats sink the executor takes no clock
/// readings and touches no counters, so observability is zero-overhead when
/// off. With a sink, the clock readings and counter updates happen once per
/// *batch* dispatch, so the observer effect shrinks with the batch size.
/// Wall time is read from std::chrono::steady_clock and is *inclusive*: an
/// operator's Next time contains the Next time of its children, the EXPLAIN
/// ANALYZE convention.
struct OpStats {
  /// Operator class name ("TableScan", "HashJoin", ...).
  std::string op_name;

  /// Which engine ran this operator, for EXPLAIN ANALYZE's backend column:
  /// "compiled" when the operator is a fused kernel or evaluates compiled
  /// predicate/expression programs, "interpret" when it fell back to the
  /// Volcano interpreter. Empty under the pure interpreting backend (the
  /// column is only rendered when a compiled execution was requested, so
  /// interpreter-only EXPLAIN output is unchanged).
  std::string backend;

  /// Why this operator is not "compiled" although the compiled backend was
  /// requested: a short space-free token ("sort", "outer-join",
  /// "predicate-shape", "verifier-rejected", ...) rendered as `fallback=` by
  /// EXPLAIN ANALYZE. Empty for compiled operators and under the
  /// interpreting backend. The detailed diagnostic (e.g. the bytecode
  /// verifier's instruction-indexed rejection) lives in the audit's
  /// CompilationCertificate, not here.
  std::string fallback;

  /// Rows returned from Next (the operator's actual output cardinality).
  int64_t rows_produced = 0;
  /// Non-empty batches returned from Next. An exact-multiple result
  /// cardinality yields exactly rows/batch_size batches — the end-of-stream
  /// call is not counted as a phantom tail batch.
  int64_t batches_produced = 0;
  /// Rows consumed from the operator's input(s): rows examined by a scan,
  /// rows pulled from both sides of a join, rows fed to an aggregate.
  int64_t input_rows = 0;
  /// Number of Next calls (batches_produced + 1 when the stream was
  /// drained).
  int64_t next_calls = 0;

  /// Wall time spent inside Open, resp. cumulative over all Next calls.
  int64_t open_ns = 0;
  int64_t next_ns = 0;

  /// IO pages this operator itself charged to the IoAccountant (reads +
  /// writes; excludes pages charged by children).
  int64_t pages_charged = 0;

  /// Hash operators: rows inserted into the build-side hash table, and the
  /// number of probe lookups performed.
  int64_t hash_build_rows = 0;
  int64_t hash_probes = 0;

  /// Sort / sort-merge / hash-aggregate: pages of simulated spill IO
  /// (the out-of-core passes beyond the first read of the input).
  int64_t spill_pages = 0;

  /// Pipeline instances that contributed to these counters: 1 for serial
  /// execution; N when the operator ran as part of an N-way morsel-parallel
  /// region (each worker clone accumulates into a private OpStats, merged
  /// here at the region's end — the accumulation itself is race-free).
  /// With workers > 1 the time counters sum the workers' clocks, so next_ns
  /// is CPU time across the region, not wall time.
  int64_t workers = 1;

  int64_t total_ns() const { return open_ns + next_ns; }

  /// Folds a worker clone's counters into this (primary) block: counts sum,
  /// workers accumulate. op_name is kept.
  void MergeFrom(const OpStats& other);
};

/// Collects the OpStats of every physical operator of one execution and
/// remembers which plan node each operator was lowered from, so EXPLAIN
/// ANALYZE can annotate the *plan* tree with actual runtime behaviour.
///
/// Lowering registers operators bottom-up; when several operators implement
/// one plan node (e.g. a join plus the projection to the node's output
/// layout), the one registered last is the topmost and defines the node's
/// actual output cardinality.
class RuntimeStatsCollector {
 public:
  struct Entry {
    const PlanNode* node = nullptr;
    std::unique_ptr<OpStats> stats;
  };

  /// Allocates the stats block for one operator lowered from `node`.
  /// The returned pointer stays valid for the collector's lifetime.
  OpStats* Register(const PlanNode* node, std::string op_name) {
    entries_.push_back(Entry{node, std::make_unique<OpStats>()});
    entries_.back().stats->op_name = std::move(op_name);
    return entries_.back().stats.get();
  }

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  /// Stats of the topmost (last-registered) operator lowered from `node`,
  /// or nullptr when the node was never lowered under this collector.
  const OpStats* ForNode(const PlanNode* node) const {
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
      if (it->node == node) return it->stats.get();
    }
    return nullptr;
  }

  /// Sum of pages charged by every operator lowered from `node` (the join
  /// and its projection wrapper count as one plan node).
  int64_t PagesForNode(const PlanNode* node) const {
    int64_t pages = 0;
    for (const Entry& e : entries_) {
      if (e.node == node) pages += e.stats->pages_charged;
    }
    return pages;
  }

 private:
  std::vector<Entry> entries_;
};

/// One-line rendering of a stats block (debugging / test diagnostics).
std::string OpStatsToString(const OpStats& s);

}  // namespace aggview

#endif  // AGGVIEW_OBS_RUNTIME_STATS_H_
