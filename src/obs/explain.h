#ifndef AGGVIEW_OBS_EXPLAIN_H_
#define AGGVIEW_OBS_EXPLAIN_H_

#include <string>
#include <vector>

#include "obs/runtime_stats.h"
#include "optimizer/plan.h"

namespace aggview {

/// The standard cardinality-estimation error metric:
/// max(est/actual, actual/est), with both sides clamped to >= 1 row so a
/// correctly-predicted empty result scores 1 (perfect) rather than dividing
/// by zero.
double QError(double est, double actual);

/// Estimated-vs-actual comparison for one plan node.
struct NodeQError {
  const PlanNode* node = nullptr;
  std::string label;        // e.g. "Join(hash)" or "Scan emp e1"
  double est_rows = 0.0;
  double actual_rows = 0.0;
  double q = 1.0;
};

/// Walks the plan tree and pairs every node's estimated cardinality with the
/// actual row count observed by the operator it was lowered to. Nodes the
/// collector never saw (not lowered, e.g. an unexecuted alternative) are
/// skipped.
std::vector<NodeQError> CollectNodeQErrors(const PlanPtr& plan,
                                           const Query& query,
                                           const RuntimeStatsCollector& stats);

/// Aggregate of the per-node Q-errors of one plan.
struct QErrorSummary {
  int nodes = 0;
  double max_q = 1.0;
  double mean_q = 1.0;      // geometric mean — q-errors are ratios
  std::string worst_label;  // label of the node with the largest q
};

QErrorSummary SummarizeQError(const std::vector<NodeQError>& nodes);

/// Renders the annotated plan tree of one *executed* plan: every node shows
/// its estimated rows, actual rows, per-node Q-error, actual IO pages
/// charged, and wall time (EXPLAIN ANALYZE). `stats` must come from
/// executing exactly this plan (ExecutePlan with a collector installed).
std::string ExplainAnalyze(const PlanPtr& plan, const Query& query,
                           const RuntimeStatsCollector& stats);

struct TransformationAudit;

/// Verbose EXPLAIN ANALYZE: the annotated plan tree plus one section per
/// compiled bytecode program of the execution's lowering (from
/// audit->compilations): which operator it belongs to, the source
/// predicate, the verification verdict with witness-row count, and the full
/// disassembly. `audit` may be null or certificate-free — the output then
/// equals the plain overload's.
std::string ExplainAnalyze(const PlanPtr& plan, const Query& query,
                           const RuntimeStatsCollector& stats,
                           const TransformationAudit* audit);

}  // namespace aggview

#endif  // AGGVIEW_OBS_EXPLAIN_H_
