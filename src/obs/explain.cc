#include "obs/explain.h"

#include <algorithm>
#include <cmath>

#include "analysis/certificate.h"
#include "analysis/dataflow.h"
#include "common/string_util.h"

namespace aggview {

double QError(double est, double actual) {
  est = std::max(est, 1.0);
  actual = std::max(actual, 1.0);
  return std::max(est / actual, actual / est);
}

namespace {

/// Everything the collector knows about one plan node, folded over the
/// operators lowered from it: the bottom-most operator is the node's real
/// implementation (its input counts and hash/spill detail are the node's);
/// the topmost defines the node's output cardinality and inclusive time.
struct NodeRuntime {
  bool executed = false;
  const OpStats* bottom = nullptr;
  const OpStats* top = nullptr;
  int64_t pages = 0;
  int64_t hash_build_rows = 0;
  int64_t hash_probes = 0;
  int64_t spill_pages = 0;
  int64_t workers = 1;
};

NodeRuntime RuntimeOfNode(const PlanNode* node,
                          const RuntimeStatsCollector& stats) {
  NodeRuntime rt;
  for (const RuntimeStatsCollector::Entry& e : stats.entries()) {
    if (e.node != node) continue;
    rt.executed = true;
    if (rt.bottom == nullptr) rt.bottom = e.stats.get();
    rt.top = e.stats.get();
    rt.pages += e.stats->pages_charged;
    rt.hash_build_rows += e.stats->hash_build_rows;
    rt.hash_probes += e.stats->hash_probes;
    rt.spill_pages += e.stats->spill_pages;
    rt.workers = std::max(rt.workers, e.stats->workers);
  }
  return rt;
}

/// Renders the dataflow verifier's provable cardinality bounds, plus a
/// loud flag when the estimate escaped them (by construction that is an
/// estimator bug — both read the same statistics).
std::string BoundsSuffix(const PlanPtr& plan, const DataflowAnalysis& flow) {
  const NodeFacts* f = flow.Find(plan.get());
  if (f == nullptr) return "";
  std::string out;
  if (std::isfinite(f->card.hi)) {
    out = StrFormat(" bounds=[%.0f, %.0f]", f->card.lo, f->card.hi);
  } else {
    out = StrFormat(" bounds=[%.0f, inf]", f->card.lo);
  }
  if (!EstimateWithinBounds(plan->est.rows, f->card)) {
    out += " EST-OUT-OF-BOUNDS";
  }
  return out;
}

void ExplainRec(const PlanPtr& plan, const Query& query,
                const RuntimeStatsCollector& stats,
                const DataflowAnalysis& flow, int indent, std::string* out) {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  *out += pad + PlanNodeLabel(plan, query);

  NodeRuntime rt = RuntimeOfNode(plan.get(), stats);
  if (rt.executed) {
    double actual = static_cast<double>(rt.top->rows_produced);
    *out += StrFormat(
        "  (est=%.1f act=%lld batches=%lld q=%.2f pages=%lld time=%.3fms",
        plan->est.rows, static_cast<long long>(rt.top->rows_produced),
        static_cast<long long>(rt.top->batches_produced),
        QError(plan->est.rows, actual), static_cast<long long>(rt.pages),
        static_cast<double>(rt.top->total_ns()) / 1e6);
    if (rt.bottom->input_rows > 0) {
      *out += StrFormat(" rows_in=%lld",
                        static_cast<long long>(rt.bottom->input_rows));
    }
    if (rt.hash_build_rows > 0 || rt.hash_probes > 0) {
      *out += StrFormat(" build=%lld probes=%lld",
                        static_cast<long long>(rt.hash_build_rows),
                        static_cast<long long>(rt.hash_probes));
    }
    if (rt.spill_pages > 0) {
      *out += StrFormat(" spill=%lld", static_cast<long long>(rt.spill_pages));
    }
    if (rt.workers > 1) {
      *out += StrFormat(" workers=%lld", static_cast<long long>(rt.workers));
    }
    // Which backend implemented this node ("compiled" / "interpret"). Only
    // labeled when the compiled backend was requested; interpreter-only
    // output is unchanged. The bottom block is the node's real
    // implementation (a Project wrapper above it is plumbing).
    if (!rt.bottom->backend.empty()) {
      *out += " backend=" + rt.bottom->backend;
      // Why the node fell back to the interpreter (compiled backend only):
      // a short token; the full story (e.g. a bytecode verifier rejection)
      // is in the audit's CompilationCertificate.
      if (!rt.bottom->fallback.empty()) {
        *out += " fallback=" + rt.bottom->fallback;
      }
    }
    *out += BoundsSuffix(plan, flow);
    *out += ")";
  } else {
    *out += StrFormat("  (est=%.1f act=? never executed%s)", plan->est.rows,
                      BoundsSuffix(plan, flow).c_str());
  }
  *out += "\n";
  if (plan->left != nullptr) {
    ExplainRec(plan->left, query, stats, flow, indent + 1, out);
  }
  if (plan->right != nullptr) {
    ExplainRec(plan->right, query, stats, flow, indent + 1, out);
  }
}

void CollectRec(const PlanPtr& plan, const Query& query,
                const RuntimeStatsCollector& stats,
                std::vector<NodeQError>* out) {
  const OpStats* top = stats.ForNode(plan.get());
  if (top != nullptr) {
    NodeQError node;
    node.node = plan.get();
    node.label = PlanNodeLabel(plan, query);
    node.est_rows = plan->est.rows;
    node.actual_rows = static_cast<double>(top->rows_produced);
    node.q = QError(node.est_rows, node.actual_rows);
    out->push_back(std::move(node));
  }
  if (plan->left != nullptr) CollectRec(plan->left, query, stats, out);
  if (plan->right != nullptr) CollectRec(plan->right, query, stats, out);
}

}  // namespace

std::vector<NodeQError> CollectNodeQErrors(const PlanPtr& plan,
                                           const Query& query,
                                           const RuntimeStatsCollector& stats) {
  std::vector<NodeQError> out;
  CollectRec(plan, query, stats, &out);
  return out;
}

QErrorSummary SummarizeQError(const std::vector<NodeQError>& nodes) {
  QErrorSummary summary;
  if (nodes.empty()) return summary;
  double log_sum = 0.0;
  for (const NodeQError& n : nodes) {
    ++summary.nodes;
    log_sum += std::log(n.q);
    if (summary.worst_label.empty() || n.q > summary.max_q) {
      summary.max_q = n.q;
      summary.worst_label = n.label;
    }
  }
  summary.mean_q = std::exp(log_sum / static_cast<double>(summary.nodes));
  return summary;
}

std::string ExplainAnalyze(const PlanPtr& plan, const Query& query,
                           const RuntimeStatsCollector& stats) {
  std::string out;
  DataflowAnalysis flow = DataflowAnalysis::Analyze(plan, query);
  ExplainRec(plan, query, stats, flow, 0, &out);
  QErrorSummary summary =
      SummarizeQError(CollectNodeQErrors(plan, query, stats));
  out += StrFormat(
      "-- %d operator(s): q-error max=%.2f geo-mean=%.2f%s%s\n", summary.nodes,
      summary.max_q, summary.mean_q,
      summary.worst_label.empty() ? "" : " worst=",
      summary.worst_label.c_str());
  return out;
}

std::string ExplainAnalyze(const PlanPtr& plan, const Query& query,
                           const RuntimeStatsCollector& stats,
                           const TransformationAudit* audit) {
  std::string out = ExplainAnalyze(plan, query, stats);
  if (audit == nullptr || audit->compilations.empty()) return out;
  out += StrFormat("-- %d compiled program(s):\n",
                   static_cast<int>(audit->compilations.size()));
  for (const CompilationCertificate& cert : audit->compilations) {
    out += StrFormat("[%s/%s] %s\n", cert.node.c_str(), cert.kind.c_str(),
                     cert.source.c_str());
    if (cert.verified) {
      out += StrFormat(
          "  verified: %d instruction(s), max stack depth %d, "
          "%d witness row(s)\n",
          cert.instructions, cert.max_stack_depth, cert.witness_rows);
      // Indent the listing two spaces under its certificate header.
      const std::string& listing = cert.disassembly;
      size_t start = 0;
      while (start < listing.size()) {
        size_t end = listing.find('\n', start);
        if (end == std::string::npos) end = listing.size();
        out += "  " + listing.substr(start, end - start) + "\n";
        start = end + 1;
      }
    } else {
      // The rejection diagnostic already quotes the offending listing.
      out += "  REJECTED (operator fell back to the interpreter): " +
             cert.rejection;
      if (out.back() != '\n') out += "\n";
    }
  }
  return out;
}

}  // namespace aggview
