#include "stats/estimator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "catalog/catalog.h"

namespace aggview {

namespace {

/// Clamps distinct counts to the (possibly fractional) row count, and for
/// integer columns to the width of the value interval — selectivity scaling
/// must not leave a distinct count above the number of representable values
/// (the dataflow verifier bounds group counts by that width).
void CapDistincts(RelEstimate* est) {
  for (auto& [col, cs] : est->cols) {
    (void)col;
    if (cs.integral && cs.has_range) {
      double width = std::floor(cs.max) - std::ceil(cs.min) + 1.0;
      cs.distinct = std::min(cs.distinct, std::max(width, 0.0));
    }
    cs.distinct = std::max(1.0, std::min(cs.distinct, std::max(est->rows, 1.0)));
  }
}

double RangeSelectivity(const ColEstimate& cs, CompareOp op, double v) {
  if (!cs.has_range || cs.max <= cs.min) return kDefaultSelectivity;
  double below;  // fraction of the column's current rows strictly below v
  if (cs.histogram != nullptr && !cs.histogram->empty()) {
    // Condition the base histogram on the current [min, max] window (it may
    // have been narrowed by earlier conjuncts).
    double f_lo = cs.histogram->FractionBelow(cs.min);
    double f_hi = cs.histogram->FractionBelow(cs.max) +
                  1.0 / static_cast<double>(cs.histogram->bounds.size());
    f_hi = std::min(f_hi, 1.0);
    double denom = f_hi - f_lo;
    if (denom <= 1e-12) return kDefaultSelectivity;
    below = std::clamp((cs.histogram->FractionBelow(v) - f_lo) / denom, 0.0, 1.0);
  } else {
    below = std::clamp((v - cs.min) / (cs.max - cs.min), 0.0, 1.0);
  }
  switch (op) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return below;
    case CompareOp::kGt:
    case CompareOp::kGe:
      return 1.0 - below;
    default:
      return kDefaultSelectivity;
  }
}

}  // namespace

RelEstimate Estimator::BaseRel(const Query& query, int rel_id) {
  const RangeVar& rv = query.range_var(rel_id);
  const TableDef& def = query.catalog().table(rv.table);
  RelEstimate est;
  est.stats_epoch = query.catalog().stats_epoch();
  est.rows = static_cast<double>(def.stats.row_count);
  for (size_t i = 0; i < rv.columns.size(); ++i) {
    ColEstimate cs;
    if (i < def.stats.columns.size()) {
      const ColumnStats& src = def.stats.columns[i];
      cs.distinct = static_cast<double>(std::max<int64_t>(src.distinct, 1));
      cs.min = src.min;
      cs.max = src.max;
      cs.has_range = src.has_range;
      if (!src.histogram.empty()) cs.histogram = &src.histogram;
    }
    if (static_cast<int>(i) < def.schema.num_columns()) {
      cs.integral = def.schema.column(static_cast<int>(i)).type ==
                    DataType::kInt64;
    }
    est.cols[rv.columns[i]] = cs;
  }
  if (rv.rowid != kInvalidColId) {
    ColEstimate cs;
    cs.distinct = est.rows;
    cs.min = 0.0;
    cs.max = std::max(est.rows - 1.0, 0.0);
    cs.has_range = est.rows > 0.0;
    cs.integral = true;
    est.cols[rv.rowid] = cs;
  }
  return est;
}

double Estimator::Selectivity(const Predicate& pred, const RelEstimate& input) {
  // col <op> literal
  ColId col;
  CompareOp op;
  Value v;
  if (pred.AsColumnVsLiteral(&col, &op, &v)) {
    const ColEstimate* cs = input.Find(col);
    if (cs == nullptr) return kDefaultSelectivity;
    switch (op) {
      case CompareOp::kEq:
        return 1.0 / std::max(cs->distinct, 1.0);
      case CompareOp::kNe:
        return 1.0 - 1.0 / std::max(cs->distinct, 1.0);
      default:
        if (v.is_string()) return kDefaultSelectivity;
        return RangeSelectivity(*cs, op, v.AsNumeric());
    }
  }
  // colA <op> colB
  ColId a, b;
  if (pred.AsColumnEquality(&a, &b)) {
    const ColEstimate* ca = input.Find(a);
    const ColEstimate* cb = input.Find(b);
    if (ca == nullptr || cb == nullptr) return kDefaultSelectivity;
    return 1.0 / std::max({ca->distinct, cb->distinct, 1.0});
  }
  if (pred.op != CompareOp::kEq && pred.op != CompareOp::kNe) {
    ColId l = pred.lhs->AsColumnRef();
    ColId r = pred.rhs->AsColumnRef();
    if (l != kInvalidColId && r != kInvalidColId) {
      // col < col: no correlation information; use the default.
      return kDefaultSelectivity;
    }
  }
  return kDefaultSelectivity;
}

RelEstimate Estimator::ApplyFilter(const RelEstimate& input,
                                   const std::vector<Predicate>& preds) {
  RelEstimate out = input;
  for (const Predicate& p : preds) {
    double sel = Selectivity(p, out);
    out.rows *= sel;
    // Narrow column metadata for analyzable conjuncts.
    ColId col;
    CompareOp op;
    Value v;
    if (p.AsColumnVsLiteral(&col, &op, &v)) {
      auto it = out.cols.find(col);
      if (it != out.cols.end()) {
        ColEstimate& cs = it->second;
        if (op == CompareOp::kEq) {
          cs.distinct = 1.0;
          if (!v.is_string()) {
            double x = v.AsNumeric();
            // A literal outside the known value interval matches nothing.
            if (cs.has_range && (x < cs.min || x > cs.max)) out.rows = 0.0;
            cs.min = cs.max = x;
            cs.has_range = true;
          }
        } else if (cs.has_range && !v.is_string()) {
          double x = v.AsNumeric();
          // Strict comparisons on an integer column exclude a full unit.
          bool unit = cs.integral && v.is_int();
          if (op == CompareOp::kLt) {
            cs.max = std::min(cs.max, unit ? x - 1.0 : x);
          } else if (op == CompareOp::kLe) {
            cs.max = std::min(cs.max, x);
          } else if (op == CompareOp::kGt) {
            cs.min = std::max(cs.min, unit ? x + 1.0 : x);
          } else if (op == CompareOp::kGe) {
            cs.min = std::max(cs.min, x);
          }
          // Contradictory conjunction: the interval emptied out.
          if (cs.min > cs.max) out.rows = 0.0;
          cs.distinct *= sel;
        } else {
          cs.distinct *= sel;
        }
      }
    }
  }
  out.rows = std::max(out.rows, 0.0);
  CapDistincts(&out);
  return out;
}

RelEstimate Estimator::Join(const RelEstimate& left, const RelEstimate& right,
                            const std::vector<Predicate>& preds) {
  RelEstimate out;
  out.stats_epoch = std::max(left.stats_epoch, right.stats_epoch);
  out.rows = left.rows * right.rows;
  out.cols = left.cols;
  for (const auto& [col, cs] : right.cols) out.cols[col] = cs;
  for (const Predicate& p : preds) {
    ColId a, b;
    if (p.AsColumnEquality(&a, &b)) {
      const ColEstimate* ca = out.Find(a);
      const ColEstimate* cb = out.Find(b);
      double da = ca ? ca->distinct : 1.0;
      double db = cb ? cb->distinct : 1.0;
      out.rows /= std::max({da, db, 1.0});
      // Containment: the joined column keeps the smaller distinct count, and
      // both sides keep only the intersection of their value intervals (a
      // matched value exists on both sides). An empty intersection means no
      // row can join.
      double d = std::min(da, db);
      if (ca != nullptr) out.cols[a].distinct = d;
      if (cb != nullptr) out.cols[b].distinct = d;
      if (ca != nullptr && cb != nullptr && ca->has_range && cb->has_range) {
        double lo = std::max(ca->min, cb->min);
        double hi = std::min(ca->max, cb->max);
        out.cols[a].min = out.cols[b].min = lo;
        out.cols[a].max = out.cols[b].max = hi;
        if (lo > hi) out.rows = 0.0;
      }
    } else {
      out.rows *= Selectivity(p, out);
    }
  }
  out.rows = std::max(out.rows, 0.0);
  CapDistincts(&out);
  return out;
}

double Estimator::CardenasGroups(double rows, double dvalues) {
  if (rows <= 0.0) return 0.0;
  dvalues = std::max(dvalues, 1.0);
  if (dvalues >= rows) return rows;  // limit of the formula; avoids pow() cost
  // d * (1 - (1 - 1/d)^n)
  double groups = dvalues * (1.0 - std::pow(1.0 - 1.0 / dvalues, rows));
  return std::clamp(groups, 1.0, rows);
}

RelEstimate Estimator::GroupBy(const RelEstimate& input,
                               const GroupBySpec& spec) {
  RelEstimate out;
  out.stats_epoch = input.stats_epoch;
  double key_space = 1.0;
  for (ColId g : spec.grouping) {
    const ColEstimate* cs = input.Find(g);
    key_space *= cs ? std::max(cs->distinct, 1.0) : 1.0;
    // Avoid overflow in pathological products.
    key_space = std::min(key_space, 1e18);
  }
  // A scalar aggregate emits exactly one row, even over empty input (the
  // dataflow verifier proves [1, 1]; HAVING below can still reject it).
  out.rows = spec.grouping.empty() ? 1.0
                                   : CardenasGroups(input.rows, key_space);
  for (ColId g : spec.grouping) {
    const ColEstimate* cs = input.Find(g);
    out.cols[g] = cs ? *cs : ColEstimate{};
  }
  for (const AggregateCall& a : spec.aggregates) {
    ColEstimate cs;
    cs.distinct = out.rows;
    switch (a.kind) {
      case AggKind::kMin:
      case AggKind::kMax:
      case AggKind::kAvg:
      case AggKind::kMedian: {
        // Result is bounded by the argument's range.
        const ColEstimate* arg =
            a.args.empty() ? nullptr : input.Find(a.args[0]);
        if (arg != nullptr && arg->has_range) {
          cs.min = arg->min;
          cs.max = arg->max;
          cs.has_range = true;
        }
        if ((a.kind == AggKind::kMin || a.kind == AggKind::kMax) &&
            arg != nullptr) {
          cs.integral = arg->integral;
        }
        break;
      }
      case AggKind::kCount:
      case AggKind::kCountStar:
      case AggKind::kCountSum: {
        cs.min = 1.0;
        cs.max = std::max(1.0, input.rows / std::max(out.rows, 1.0) * 4.0);
        cs.has_range = true;
        cs.integral = true;
        break;
      }
      case AggKind::kSum:
      case AggKind::kAvgFinal:
        break;
    }
    out.cols[a.output] = cs;
  }
  CapDistincts(&out);
  if (!spec.having.empty()) {
    out = ApplyFilter(out, spec.having);
  }
  return out;
}

Status Estimator::CheckFresh(const RelEstimate& est, const Catalog& catalog) {
  if (est.stats_epoch < 0) return Status::OK();
  const int64_t now = catalog.stats_epoch();
  if (est.stats_epoch != now) {
    return Status::InvalidArgument(
        "stale RelEstimate: built at catalog stats epoch " +
        std::to_string(est.stats_epoch) + " but the catalog is at epoch " +
        std::to_string(now) +
        "; its histogram pointers may dangle (see ColEstimate::histogram) — "
        "rebuild the estimate from current statistics");
  }
  return Status::OK();
}

}  // namespace aggview
