#ifndef AGGVIEW_STATS_ESTIMATOR_H_
#define AGGVIEW_STATS_ESTIMATOR_H_

#include <unordered_map>
#include <vector>

#include "algebra/query.h"
#include "catalog/statistics.h"

namespace aggview {

/// Estimated statistics for one output column of a (sub)plan.
struct ColEstimate {
  double distinct = 1.0;
  double min = 0.0;
  double max = 0.0;
  bool has_range = false;
  /// True for integer-typed columns (set from the table schema at the
  /// leaves). Lets the estimator narrow strict comparisons by a full unit
  /// and cap the distinct count by the interval width — both required so
  /// estimates stay inside the dataflow verifier's provable bounds, which
  /// narrow the same way.
  bool integral = false;
  /// Base-table equi-depth histogram (owned by the catalog; null for
  /// derived columns). Range selectivities condition the histogram on the
  /// current [min, max], so it stays usable after earlier filters narrowed
  /// the column.
  ///
  /// Lifetime contract: this is a raw pointer into the catalog-owned
  /// TableStats the estimate was built from. Any catalog statistics
  /// mutation — Catalog::mutable_table, ComputeStats, or an explicit
  /// BumpStatsEpoch — may reallocate or replace that storage, so an
  /// estimate must not be used past the stats epoch it was built under.
  /// RelEstimate carries that epoch (stamped by Estimator::BaseRel and
  /// propagated by every derivation); Estimator::CheckFresh turns a stale
  /// estimate into a clear error instead of a dangling read.
  const Histogram* histogram = nullptr;
};

using ColStatsMap = std::unordered_map<ColId, ColEstimate>;

/// Estimated statistics for a (sub)plan's output relation.
struct RelEstimate {
  double rows = 0.0;
  ColStatsMap cols;
  /// Catalog stats epoch the leaf statistics (histogram pointers in `cols`)
  /// were read at; -1 when the estimate holds no catalog-owned state. See
  /// ColEstimate::histogram for the lifetime contract this stamp enforces.
  int64_t stats_epoch = -1;

  const ColEstimate* Find(ColId c) const {
    auto it = cols.find(c);
    return it == cols.end() ? nullptr : &it->second;
  }
};

/// Selectivity assumed for predicates the estimator cannot analyze
/// (arithmetic on both sides, string ranges, ...). The classic System-R
/// default.
inline constexpr double kDefaultSelectivity = 1.0 / 3.0;

/// Textbook cardinality estimation: independence across conjuncts, uniform
/// values within a column, containment of value sets for joins, and the
/// Cardenas formula for the number of groups. Statistics are exact at the
/// leaves (ComputeStats scans the data), so estimation error comes only from
/// the model assumptions.
class Estimator {
 public:
  /// Estimate for a base range variable before any predicate.
  static RelEstimate BaseRel(const Query& query, int rel_id);

  /// Selectivity of one conjunct against `input`.
  static double Selectivity(const Predicate& pred, const RelEstimate& input);

  /// Applies a conjunction: multiplies selectivities, caps distinct counts by
  /// the output cardinality, and narrows ranges for col-vs-literal conjuncts.
  static RelEstimate ApplyFilter(const RelEstimate& input,
                                 const std::vector<Predicate>& preds);

  /// Join of two inputs under a conjunction of join predicates.
  static RelEstimate Join(const RelEstimate& left, const RelEstimate& right,
                          const std::vector<Predicate>& preds);

  /// Group-by: the Cardenas-capped group count plus output column stats
  /// (grouping columns keep their stats; aggregate outputs get
  /// distinct = #groups and inherit the argument's range when meaningful).
  /// HAVING is applied as a filter on the grouped output.
  static RelEstimate GroupBy(const RelEstimate& input, const GroupBySpec& spec);

  /// Expected number of distinct groups when `rows` rows draw uniformly from
  /// `dvalues` possible grouping-key values: d * (1 - (1 - 1/d)^n).
  static double CardenasGroups(double rows, double dvalues);

  /// Enforces ColEstimate::histogram's lifetime contract: an error when
  /// `est` was built under an older catalog stats epoch (its histogram
  /// pointers may dangle — the estimate must be rebuilt), OK for estimates
  /// without catalog-owned state (stats_epoch == -1).
  static Status CheckFresh(const RelEstimate& est, const Catalog& catalog);
};

}  // namespace aggview

#endif  // AGGVIEW_STATS_ESTIMATOR_H_
