#ifndef AGGVIEW_ALGEBRA_LOGICAL_PLAN_H_
#define AGGVIEW_ALGEBRA_LOGICAL_PLAN_H_

#include <set>
#include <unordered_map>
#include <vector>

#include "algebra/query.h"

namespace aggview {

/// Maps every query-global column id to the range variable that owns it.
/// Aggregate outputs have no owner and are absent from the map.
std::unordered_map<ColId, int> ColumnOwners(const Query& query);

/// The set of range-variable ids (restricted to `scope`) whose columns appear
/// in `pred`. Columns owned by relations outside the scope, and aggregate
/// outputs, are ignored.
std::set<int> PredicateRels(const Query& query, const Predicate& pred,
                            const std::set<int>& scope);

/// True when the relation set `rels` forms a connected join graph under the
/// conjunction `preds` (predicates touching two or more rels are edges).
/// Singleton and empty sets are connected.
bool RelsConnected(const Query& query, const std::vector<Predicate>& preds,
                   const std::set<int>& rels);

/// Equi-join column pairs between `left_rels`-owned columns and columns of
/// relation `right_rel`, extracted from `preds`. Returns pairs
/// (left_col, right_col).
std::vector<std::pair<ColId, ColId>> EquiJoinPairs(
    const Query& query, const std::vector<Predicate>& preds,
    const std::set<int>& left_rels, int right_rel);

/// True when the equi-join columns of `right_rel` (right side of `pairs`),
/// translated to table-local indices, cover a primary or unique key of the
/// underlying table. This is the "at most one matching tuple per group" test
/// used by both push-down applicability and pull-up key elision.
bool EquiJoinCoversKey(const Query& query, int right_rel,
                       const std::vector<std::pair<ColId, ColId>>& pairs);

}  // namespace aggview

#endif  // AGGVIEW_ALGEBRA_LOGICAL_PLAN_H_
