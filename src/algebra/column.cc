#include "algebra/column.h"

namespace aggview {

// RowLayout and ColumnCatalog are header-only; this translation unit exists
// so the module has a home for future out-of-line definitions.

}  // namespace aggview
