#ifndef AGGVIEW_ALGEBRA_COLUMN_H_
#define AGGVIEW_ALGEBRA_COLUMN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "types/data_type.h"

namespace aggview {

/// Query-global column identity.
///
/// Every occurrence of a base table in a query (each range variable) gets its
/// own set of ColIds, and every aggregate result gets a fresh ColId. The
/// transformations of the paper (pull-up, push-down) manipulate *column id
/// sets*, never names, so self-joins like `emp e1, emp e2` in Example 1 are
/// unambiguous.
using ColId = int32_t;

inline constexpr ColId kInvalidColId = -1;

/// Metadata for one query-global column.
struct ColumnInfo {
  /// Display name, e.g. "e1.sal" or "avg(e2.sal)".
  std::string name;
  DataType type = DataType::kInt64;
  /// Byte width used in row-width (and hence page-count) arithmetic.
  int64_t width = 8;
  /// Declared nullability. Defaults to true (unknown); COUNT-family
  /// aggregate outputs and coalescing partial-count columns are declared
  /// non-nullable at allocation, and the dataflow analyzer proves the
  /// declaration (a COUNT output declared nullable is a plan bug).
  bool nullable = true;
};

/// Registry of all query-global columns of one query. Owned by the Query
/// object; transformations allocate new columns (e.g. aggregate outputs)
/// through it.
class ColumnCatalog {
 public:
  ColId Add(std::string name, DataType type, int64_t width) {
    columns_.push_back({std::move(name), type, width});
    return static_cast<ColId>(columns_.size() - 1);
  }
  ColId Add(std::string name, DataType type) {
    return Add(std::move(name), type, DataTypeWidth(type));
  }

  const ColumnInfo& info(ColId id) const {
    return columns_[static_cast<size_t>(id)];
  }
  int size() const { return static_cast<int>(columns_.size()); }

  const std::string& name(ColId id) const { return info(id).name; }
  DataType type(ColId id) const { return info(id).type; }
  int64_t width(ColId id) const { return info(id).width; }
  bool nullable(ColId id) const { return info(id).nullable; }
  void set_nullable(ColId id, bool nullable) {
    columns_[static_cast<size_t>(id)].nullable = nullable;
  }

 private:
  std::vector<ColumnInfo> columns_;
};

/// Positional layout of a row: which ColId lives at which index. Physical
/// operators carry one of these so expressions can be evaluated against rows.
class RowLayout {
 public:
  RowLayout() = default;
  explicit RowLayout(std::vector<ColId> cols) : cols_(std::move(cols)) {
    for (size_t i = 0; i < cols_.size(); ++i) {
      pos_[cols_[i]] = static_cast<int>(i);
    }
  }

  /// Index of `id` in the row, or -1 when the column is absent.
  int IndexOf(ColId id) const {
    auto it = pos_.find(id);
    return it == pos_.end() ? -1 : it->second;
  }
  bool Contains(ColId id) const { return pos_.count(id) > 0; }

  const std::vector<ColId>& columns() const { return cols_; }
  int size() const { return static_cast<int>(cols_.size()); }

  /// Sum of the widths of the layout's columns.
  int64_t RowWidth(const ColumnCatalog& cat) const {
    int64_t w = 0;
    for (ColId c : cols_) w += cat.width(c);
    return w;
  }

 private:
  std::vector<ColId> cols_;
  std::unordered_map<ColId, int> pos_;
};

}  // namespace aggview

#endif  // AGGVIEW_ALGEBRA_COLUMN_H_
