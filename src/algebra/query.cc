#include "algebra/query.h"

#include <algorithm>

#include "common/string_util.h"

namespace aggview {

std::vector<ColId> GroupBySpec::OutputColumns() const {
  std::vector<ColId> out = grouping;
  for (const AggregateCall& a : aggregates) out.push_back(a.output);
  return out;
}

std::set<ColId> GroupBySpec::AggOutputSet() const {
  std::set<ColId> out;
  for (const AggregateCall& a : aggregates) out.insert(a.output);
  return out;
}

std::set<ColId> GroupBySpec::AggArgSet() const {
  std::set<ColId> out;
  for (const AggregateCall& a : aggregates) {
    out.insert(a.args.begin(), a.args.end());
  }
  return out;
}

std::string GroupBySpec::ToString(const ColumnCatalog& cat) const {
  std::string out = "group by [";
  for (size_t i = 0; i < grouping.size(); ++i) {
    if (i > 0) out += ", ";
    out += cat.name(grouping[i]);
  }
  out += "] agg [";
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggregates[i].ToString(cat);
  }
  out += "]";
  if (!having.empty()) {
    out += " having [";
    for (size_t i = 0; i < having.size(); ++i) {
      if (i > 0) out += " and ";
      out += having[i].ToString(cat);
    }
    out += "]";
  }
  return out;
}

bool SpjBlock::ContainsRel(int rel_id) const {
  return std::find(rels.begin(), rels.end(), rel_id) != rels.end();
}

int Query::AddRangeVar(TableId table, const std::string& alias) {
  const TableDef& def = catalog_->table(table);
  RangeVar rv;
  rv.id = static_cast<int>(range_vars_.size());
  rv.table = table;
  rv.alias = alias;
  for (int i = 0; i < def.schema.num_columns(); ++i) {
    const ColumnSpec& c = def.schema.column(i);
    rv.columns.push_back(
        columns_.Add(alias + "." + c.name, c.type, c.width));
  }
  // Keyless tables get a synthetic tuple id usable as a key.
  if (def.primary_key.empty() && def.unique_keys.empty()) {
    rv.rowid = columns_.Add(alias + ".$rowid", DataType::kInt64);
  }
  range_vars_.push_back(std::move(rv));
  return range_vars_.back().id;
}

int Query::AddRangeVarWithReuse(TableId table, const std::string& alias,
                                const std::vector<ColId>& reuse) {
  const TableDef& def = catalog_->table(table);
  RangeVar rv;
  rv.id = static_cast<int>(range_vars_.size());
  rv.table = table;
  rv.alias = alias;
  for (int i = 0; i < def.schema.num_columns(); ++i) {
    const ColumnSpec& c = def.schema.column(i);
    ColId reused = i < static_cast<int>(reuse.size())
                       ? reuse[static_cast<size_t>(i)]
                       : kInvalidColId;
    rv.columns.push_back(reused != kInvalidColId
                             ? reused
                             : columns_.Add(alias + "." + c.name, c.type,
                                            c.width));
  }
  if (def.primary_key.empty() && def.unique_keys.empty()) {
    rv.rowid = columns_.Add(alias + ".$rowid", DataType::kInt64);
  }
  range_vars_.push_back(std::move(rv));
  return range_vars_.back().id;
}

Result<ColId> Query::ResolveColumn(const std::string& alias,
                                   const std::string& column_name) const {
  for (const RangeVar& rv : range_vars_) {
    if (rv.alias != alias) continue;
    const TableDef& def = catalog_->table(rv.table);
    int idx = def.schema.FindColumn(column_name);
    if (idx < 0) {
      return Status::BindError("no column '" + column_name + "' in '" + alias +
                               "' (table " + def.name + ")");
    }
    return rv.columns[static_cast<size_t>(idx)];
  }
  return Status::BindError("no range variable named '" + alias + "'");
}

ColId Query::AddAggregateOutput(AggKind kind, const std::vector<ColId>& args,
                                const std::string& display_name,
                                DataType type) {
  (void)args;
  ColId out = columns_.Add(display_name, type);
  // COUNT-family results are never NULL: COUNT/COUNT(*) emit 0 on empty
  // input and the COUNT-combine (kCountSum) sums partial counts starting
  // from 0. Declaring this here lets the dataflow analyzer cross-check the
  // declaration against what the plan provably produces.
  if (kind == AggKind::kCount || kind == AggKind::kCountStar ||
      kind == AggKind::kCountSum) {
    columns_.set_nullable(out, false);
  }
  return out;
}

std::set<ColId> Query::ColumnsOfRels(const std::vector<int>& rel_ids) const {
  std::set<ColId> out;
  for (int id : rel_ids) {
    const RangeVar& rv = range_var(id);
    out.insert(rv.columns.begin(), rv.columns.end());
    if (rv.rowid != kInvalidColId) out.insert(rv.rowid);
  }
  return out;
}

Status Query::Validate() const {
  // Every range variable appears in exactly one block.
  std::vector<int> occurrences(range_vars_.size(), 0);
  for (int id : base_rels_) occurrences[static_cast<size_t>(id)]++;
  for (const AggView& v : views_) {
    for (int id : v.spj.rels) occurrences[static_cast<size_t>(id)]++;
  }
  for (size_t i = 0; i < occurrences.size(); ++i) {
    int expected = range_vars_[i].detached ? 0 : 1;
    if (occurrences[i] != expected) {
      return Status::Internal(StrFormat(
          "range variable %zu ('%s'%s) appears in %d blocks", i,
          range_vars_[i].alias.c_str(),
          range_vars_[i].detached ? ", detached" : "", occurrences[i]));
    }
  }

  // View predicates must be bound by the view's own columns; grouping columns
  // and aggregate args must come from the view's relations; HAVING must be
  // bound by grouping + agg outputs.
  for (const AggView& v : views_) {
    std::set<ColId> inside = ColumnsOfRels(v.spj.rels);
    for (const Predicate& p : v.spj.predicates) {
      if (!p.BoundBy(inside)) {
        return Status::Internal("view '" + v.name +
                                "' has a predicate referencing outside columns: " +
                                p.ToString(columns_));
      }
    }
    for (ColId g : v.group_by.grouping) {
      if (inside.count(g) == 0) {
        return Status::Internal("view '" + v.name +
                                "' groups by a column outside its block: " +
                                columns_.name(g));
      }
    }
    std::set<ColId> visible = inside;  // grouping ⊆ inside
    for (const AggregateCall& a : v.group_by.aggregates) {
      for (ColId arg : a.args) {
        if (inside.count(arg) == 0) {
          return Status::Internal("view '" + v.name +
                                  "' aggregates a column outside its block: " +
                                  columns_.name(arg));
        }
      }
      visible.insert(a.output);
    }
    std::set<ColId> having_visible(v.group_by.grouping.begin(),
                                   v.group_by.grouping.end());
    for (const AggregateCall& a : v.group_by.aggregates) {
      having_visible.insert(a.output);
    }
    for (const Predicate& p : v.group_by.having) {
      if (!p.BoundBy(having_visible)) {
        return Status::Internal("view '" + v.name +
                                "' HAVING references a non-output column: " +
                                p.ToString(columns_));
      }
    }
  }

  // Top block: predicates bound by base columns + view outputs.
  std::set<ColId> top_visible = ColumnsOfRels(base_rels_);
  for (const AggView& v : views_) {
    for (ColId c : v.OutputColumns()) top_visible.insert(c);
  }
  for (const Predicate& p : predicates_) {
    if (!p.BoundBy(top_visible)) {
      return Status::Internal("top-level predicate references invisible column: " +
                              p.ToString(columns_));
    }
  }

  std::set<ColId> select_visible = top_visible;
  if (top_group_by_.has_value()) {
    for (ColId g : top_group_by_->grouping) {
      if (top_visible.count(g) == 0) {
        return Status::Internal("top group-by column not visible: " +
                                columns_.name(g));
      }
    }
    for (const AggregateCall& a : top_group_by_->aggregates) {
      for (ColId arg : a.args) {
        if (top_visible.count(arg) == 0) {
          return Status::Internal("top aggregate argument not visible: " +
                                  columns_.name(arg));
        }
      }
    }
    select_visible = std::set<ColId>(top_group_by_->grouping.begin(),
                                     top_group_by_->grouping.end());
    for (const AggregateCall& a : top_group_by_->aggregates) {
      select_visible.insert(a.output);
    }
    std::set<ColId> having_visible = select_visible;
    for (const Predicate& p : top_group_by_->having) {
      if (!p.BoundBy(having_visible)) {
        return Status::Internal("top HAVING references a non-output column: " +
                                p.ToString(columns_));
      }
    }
  }
  for (ColId c : select_list_) {
    if (select_visible.count(c) == 0) {
      return Status::Internal("select list column not visible at top: " +
                              columns_.name(c));
    }
  }
  for (const OrderKey& key : order_by_) {
    if (select_visible.count(key.column) == 0) {
      return Status::Internal("ORDER BY column not visible at top: " +
                              columns_.name(key.column));
    }
  }
  if (select_list_.empty()) {
    return Status::Internal("empty select list");
  }
  return Status::OK();
}

std::string Query::ToString() const {
  std::string out;
  for (const AggView& v : views_) {
    out += "view " + v.name + ":\n  from [";
    for (size_t i = 0; i < v.spj.rels.size(); ++i) {
      if (i > 0) out += ", ";
      const RangeVar& rv = range_var(v.spj.rels[i]);
      out += catalog_->table(rv.table).name + " " + rv.alias;
    }
    out += "]\n";
    for (const Predicate& p : v.spj.predicates) {
      out += "  where " + p.ToString(columns_) + "\n";
    }
    out += "  " + v.group_by.ToString(columns_) + "\n";
  }
  out += "select [";
  for (size_t i = 0; i < select_list_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_.name(select_list_[i]);
  }
  out += "]\nfrom [";
  bool first = true;
  for (const AggView& v : views_) {
    if (!first) out += ", ";
    out += v.name;
    first = false;
  }
  for (int id : base_rels_) {
    if (!first) out += ", ";
    const RangeVar& rv = range_var(id);
    out += catalog_->table(rv.table).name + " " + rv.alias;
    first = false;
  }
  out += "]\n";
  for (const Predicate& p : predicates_) {
    out += "where " + p.ToString(columns_) + "\n";
  }
  if (top_group_by_.has_value()) {
    out += top_group_by_->ToString(columns_) + "\n";
  }
  return out;
}

}  // namespace aggview
