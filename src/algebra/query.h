#ifndef AGGVIEW_ALGEBRA_QUERY_H_
#define AGGVIEW_ALGEBRA_QUERY_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "algebra/column.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "expr/aggregate.h"
#include "expr/predicate.h"

namespace aggview {

/// One occurrence of a base table in a query (a range variable). Each
/// occurrence owns a fresh set of query-global column ids, so self-joins
/// (Example 1's `emp e1, emp e2`) are unambiguous.
struct RangeVar {
  /// Index of this range variable within Query::range_vars().
  int id = -1;
  TableId table = -1;
  std::string alias;
  /// Query-global ids, positionally aligned with the table schema.
  std::vector<ColId> columns;
  /// Synthetic tuple-id column, allocated only when the table declares no
  /// key (the paper, Section 3: "In the absence of a declared primary key,
  /// the query engine can use the internal tuple id as a key"). The scan
  /// operator materializes it as the row's position.
  ColId rowid = kInvalidColId;
  /// Set by the materialized-view rewriter when this occurrence was replaced
  /// by a view scan: the range variable stays allocated (its column ids may
  /// live on, reused by the backing scan) but belongs to no block and is
  /// never scanned. Validate() requires detached vars in zero blocks.
  bool detached = false;

  std::set<ColId> ColumnSet() const {
    std::set<ColId> out(columns.begin(), columns.end());
    if (rowid != kInvalidColId) out.insert(rowid);
    return out;
  }
};

/// One ORDER BY key of the final result.
struct OrderKey {
  ColId column = kInvalidColId;
  bool descending = false;
};

/// A group-by operator: grouping columns, aggregate computations, and the
/// HAVING conjunction (predicates over grouping columns and aggregate
/// outputs). The operator's output columns are `grouping` followed by the
/// aggregate outputs.
struct GroupBySpec {
  std::vector<ColId> grouping;
  std::vector<AggregateCall> aggregates;
  std::vector<Predicate> having;

  std::vector<ColId> OutputColumns() const;
  std::set<ColId> AggOutputSet() const;
  std::set<ColId> AggArgSet() const;
  std::string ToString(const ColumnCatalog& cat) const;
};

/// A select-project-join block: a set of range variables (by id) and a
/// conjunction of predicates (local selections and join predicates are not
/// distinguished structurally; classification is positional — a predicate
/// bound by one relation's columns is a selection).
struct SpjBlock {
  std::vector<int> rels;
  std::vector<Predicate> predicates;

  bool ContainsRel(int rel_id) const;
};

/// An aggregate view Qi = Gi(Vi): a single-block SPJ query with a group-by
/// and optional HAVING (paper Section 2).
struct AggView {
  std::string name;
  SpjBlock spj;
  GroupBySpec group_by;

  /// The view's visible output columns (grouping columns + agg outputs).
  std::vector<ColId> OutputColumns() const { return group_by.OutputColumns(); }
};

/// The canonical query form of Figure 3:
///
///   G0( Q1 ⋈ ... ⋈ Qm ⋈ B1 ⋈ ... ⋈ Bn ),  Qi = Gi(Vi)
///
/// - `views()` are the aggregate views Q1..Qm;
/// - `base_rels()` are B1..Bn (ids of range variables in the top block);
/// - `predicates()` is the top block's conjunction — it may reference base
///   columns, view grouping columns, and view aggregate outputs;
/// - `top_group_by()` is the optional G0 (+ HAVING);
/// - `select_list()` are the output columns.
///
/// All range variables — those inside views and those in the top block —
/// live in one array so transformations can move them between blocks by id.
class Query {
 public:
  explicit Query(const Catalog* catalog) : catalog_(catalog) {}

  // Queries are copied by the transformations (pull-up returns a rewritten
  // copy), so keep them copyable.
  Query(const Query&) = default;
  Query& operator=(const Query&) = default;
  Query(Query&&) = default;
  Query& operator=(Query&&) = default;

  const Catalog& catalog() const { return *catalog_; }
  ColumnCatalog& columns() { return columns_; }
  const ColumnCatalog& columns() const { return columns_; }

  /// Adds an occurrence of catalog table `table` under `alias`, allocating
  /// query-global column ids named "<alias>.<col>". The new range variable is
  /// NOT placed in any block; callers add its id to a view's SPJ or to the
  /// top block.
  int AddRangeVar(TableId table, const std::string& alias);

  /// Like AddRangeVar, but positions with a valid ColId in `reuse` adopt
  /// that existing column instead of allocating a fresh one. The
  /// materialized-view rewriter uses this to make the backing-table scan
  /// produce the very column ids the query already references (the matched
  /// grouping columns of the replaced relations, which are detached and no
  /// longer produce them). `reuse` may be shorter than the schema; missing
  /// or invalid entries allocate fresh ids named "<alias>.<col>".
  int AddRangeVarWithReuse(TableId table, const std::string& alias,
                           const std::vector<ColId>& reuse);

  /// Marks a range variable as replaced by the view rewriter; see
  /// RangeVar::detached.
  void DetachRangeVar(int id) {
    range_vars_[static_cast<size_t>(id)].detached = true;
  }

  const RangeVar& range_var(int id) const {
    return range_vars_[static_cast<size_t>(id)];
  }
  int num_range_vars() const { return static_cast<int>(range_vars_.size()); }

  /// ColId of `alias`.`column_name`; BindError when absent.
  Result<ColId> ResolveColumn(const std::string& alias,
                              const std::string& column_name) const;

  /// Allocates the output column of an aggregate, named e.g. "avg(e2.sal)".
  ColId AddAggregateOutput(AggKind kind, const std::vector<ColId>& args,
                           const std::string& display_name, DataType type);

  std::vector<AggView>& views() { return views_; }
  const std::vector<AggView>& views() const { return views_; }

  std::vector<int>& base_rels() { return base_rels_; }
  const std::vector<int>& base_rels() const { return base_rels_; }

  std::vector<Predicate>& predicates() { return predicates_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }

  std::optional<GroupBySpec>& top_group_by() { return top_group_by_; }
  const std::optional<GroupBySpec>& top_group_by() const {
    return top_group_by_;
  }

  std::vector<ColId>& select_list() { return select_list_; }
  const std::vector<ColId>& select_list() const { return select_list_; }

  std::vector<OrderKey>& order_by() { return order_by_; }
  const std::vector<OrderKey>& order_by() const { return order_by_; }

  /// Union of the column sets of the given range-variable ids.
  std::set<ColId> ColumnsOfRels(const std::vector<int>& rel_ids) const;

  /// Structural sanity checks: every predicate bound by the columns visible
  /// in its block, select list visible at the top, group-by arity, etc.
  Status Validate() const;

  /// Multi-line rendering of the canonical form (for examples and tests).
  std::string ToString() const;

 private:
  const Catalog* catalog_;
  ColumnCatalog columns_;
  std::vector<RangeVar> range_vars_;
  std::vector<AggView> views_;
  std::vector<int> base_rels_;
  std::vector<Predicate> predicates_;
  std::optional<GroupBySpec> top_group_by_;
  std::vector<ColId> select_list_;
  std::vector<OrderKey> order_by_;
};

}  // namespace aggview

#endif  // AGGVIEW_ALGEBRA_QUERY_H_
