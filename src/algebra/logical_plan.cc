#include "algebra/logical_plan.h"

#include <algorithm>
#include <functional>

namespace aggview {

std::unordered_map<ColId, int> ColumnOwners(const Query& query) {
  std::unordered_map<ColId, int> owners;
  for (int i = 0; i < query.num_range_vars(); ++i) {
    for (ColId c : query.range_var(i).columns) owners[c] = i;
    if (query.range_var(i).rowid != kInvalidColId) {
      owners[query.range_var(i).rowid] = i;
    }
  }
  return owners;
}

std::set<int> PredicateRels(const Query& query, const Predicate& pred,
                            const std::set<int>& scope) {
  std::set<int> out;
  std::unordered_map<ColId, int> owners = ColumnOwners(query);
  for (ColId c : pred.Columns()) {
    auto it = owners.find(c);
    if (it == owners.end()) continue;
    if (scope.count(it->second) > 0) out.insert(it->second);
  }
  return out;
}

bool RelsConnected(const Query& query, const std::vector<Predicate>& preds,
                   const std::set<int>& rels) {
  if (rels.size() <= 1) return true;
  // Union-find over the relation ids.
  std::unordered_map<int, int> parent;
  for (int r : rels) parent[r] = r;
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Predicate& p : preds) {
    std::set<int> touched = PredicateRels(query, p, rels);
    if (touched.size() < 2) continue;
    int first = *touched.begin();
    for (int r : touched) {
      parent[find(r)] = find(first);
    }
  }
  int root = find(*rels.begin());
  return std::all_of(rels.begin(), rels.end(),
                     [&](int r) { return find(r) == root; });
}

std::vector<std::pair<ColId, ColId>> EquiJoinPairs(
    const Query& query, const std::vector<Predicate>& preds,
    const std::set<int>& left_rels, int right_rel) {
  std::unordered_map<ColId, int> owners = ColumnOwners(query);
  std::vector<std::pair<ColId, ColId>> pairs;
  for (const Predicate& p : preds) {
    ColId a, b;
    if (!p.AsColumnEquality(&a, &b)) continue;
    auto owner_of = [&](ColId c) -> int {
      auto it = owners.find(c);
      return it == owners.end() ? -1 : it->second;
    };
    int oa = owner_of(a), ob = owner_of(b);
    if (ob == right_rel && oa >= 0 && left_rels.count(oa) > 0) {
      pairs.emplace_back(a, b);
    } else if (oa == right_rel && ob >= 0 && left_rels.count(ob) > 0) {
      pairs.emplace_back(b, a);
    }
  }
  return pairs;
}

bool EquiJoinCoversKey(const Query& query, int right_rel,
                       const std::vector<std::pair<ColId, ColId>>& pairs) {
  const RangeVar& rv = query.range_var(right_rel);
  const TableDef& def = query.catalog().table(rv.table);
  std::vector<int> local;
  for (const auto& [left_col, right_col] : pairs) {
    (void)left_col;
    for (size_t i = 0; i < rv.columns.size(); ++i) {
      if (rv.columns[i] == right_col) {
        local.push_back(static_cast<int>(i));
        break;
      }
    }
  }
  return def.CoversKey(local);
}

}  // namespace aggview
