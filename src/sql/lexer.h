#ifndef AGGVIEW_SQL_LEXER_H_
#define AGGVIEW_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace aggview {

/// Token kinds of the SQL subset.
enum class TokenKind {
  kIdentifier,  // emp, e1, dno   (keywords are identifiers classified later)
  kInteger,     // 42
  kReal,        // 3.5
  kString,      // 'abc'
  kSymbol,      // = <> < <= > >= ( ) , . * + - / ;
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // identifier lower-cased; symbol spelling; literal text
  int64_t int_value = 0;
  double real_value = 0.0;
  int position = 0;  // byte offset, for error messages
};

/// Splits `sql` into tokens. Identifiers are lower-cased (the SQL subset is
/// case-insensitive); string literals keep their exact contents.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace aggview

#endif  // AGGVIEW_SQL_LEXER_H_
