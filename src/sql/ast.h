#ifndef AGGVIEW_SQL_AST_H_
#define AGGVIEW_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "expr/aggregate.h"
#include "expr/predicate.h"

namespace aggview {

/// Unbound expression tree produced by the parser.
struct AstExpr {
  enum class Kind { kColumnRef, kIntLiteral, kRealLiteral, kStringLiteral,
                    kArith, kAggregate };

  Kind kind = Kind::kColumnRef;

  // kColumnRef: qualifier may be empty ("sal" vs "e.sal").
  std::string qualifier;
  std::string name;

  // literals
  int64_t int_value = 0;
  double real_value = 0.0;
  std::string string_value;

  // kArith
  ArithOp arith_op = ArithOp::kAdd;
  std::unique_ptr<AstExpr> lhs;
  std::unique_ptr<AstExpr> rhs;

  // kAggregate: agg_kind over `lhs` (null for COUNT(*)).
  AggKind agg_kind = AggKind::kCountStar;

  /// Deep copy (AST nodes are trees of unique_ptrs).
  std::unique_ptr<AstExpr> Clone() const;

  /// True when the subtree contains an aggregate call.
  bool ContainsAggregate() const;

  /// Structural rendering for diagnostics and for matching aggregate calls
  /// between SELECT and HAVING ("avg(e.sal)").
  std::string ToString() const;
};

struct AstPredicate {
  std::unique_ptr<AstExpr> lhs;
  CompareOp op = CompareOp::kEq;
  std::unique_ptr<AstExpr> rhs;
};

struct AstSelectItem {
  std::unique_ptr<AstExpr> expr;
  std::string alias;  // optional AS name
};

struct AstTableRef {
  std::string table;  // base table or view name
  std::string alias;  // defaults to the table name
};

struct AstOrderKey {
  AstExpr column;  // column ref
  bool descending = false;
};

struct AstSelect {
  std::vector<AstSelectItem> items;
  std::vector<AstTableRef> from;
  std::vector<AstPredicate> where;     // conjunction
  std::vector<AstExpr> group_by;       // column refs
  std::vector<AstPredicate> having;    // conjunction
  std::vector<AstOrderKey> order_by;
};

struct AstCreateView {
  std::string name;
  std::vector<std::string> column_names;  // may be empty (use item aliases)
  AstSelect select;
};

/// A script: zero or more view definitions followed by one query.
struct AstScript {
  std::vector<AstCreateView> views;
  AstSelect query;
};

/// A materialized-view DDL statement:
///   CREATE MATERIALIZED VIEW name [(col, ...)] AS select [;]
///   REFRESH MATERIALIZED VIEW name [;]
struct AstMatViewDdl {
  bool refresh = false;
  std::string name;
  std::vector<std::string> column_names;  // CREATE only; may be empty
  AstSelect select;                       // CREATE only
  /// The definition text after AS, verbatim — stored in the catalog so the
  /// view can be re-bound (for matching, maintenance, refresh) without the
  /// catalog depending on the AST.
  std::string select_sql;
};

}  // namespace aggview

#endif  // AGGVIEW_SQL_AST_H_
