#ifndef AGGVIEW_SQL_BINDER_H_
#define AGGVIEW_SQL_BINDER_H_

#include "algebra/query.h"
#include "sql/ast.h"

namespace aggview {

/// Binds a parsed script against a catalog, producing the canonical
/// multi-block Query of Figure 3.
///
/// Restrictions (the paper's query class, Section 2):
///  - views are single-block SELECT ... GROUP BY ... [HAVING ...] over base
///    tables (no views over views);
///  - the main query joins base tables and views, with an optional GROUP BY
///    and HAVING;
///  - predicates are conjunctions of comparisons;
///  - aggregate arguments are single columns; non-aggregate select items of
///    a grouped query must be grouping columns.
Result<Query> BindScript(const Catalog& catalog, const AstScript& script);

/// Convenience: parse + bind in one step.
Result<Query> ParseAndBind(const Catalog& catalog, const std::string& sql);

}  // namespace aggview

#endif  // AGGVIEW_SQL_BINDER_H_
