#include "sql/parser.h"

#include "common/string_util.h"
#include "sql/lexer.h"

namespace aggview {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<AstScript> Script();
  Result<AstSelect> SingleSelect();
  Result<AstMatViewDdl> MatViewDdl(const std::string& sql);

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool AtKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdentifier && Peek().text == kw;
  }
  bool AtSymbol(const char* sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == sym;
  }
  bool ConsumeKeyword(const char* kw) {
    if (!AtKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  bool ConsumeSymbol(const char* sym) {
    if (!AtSymbol(sym)) return false;
    ++pos_;
    return true;
  }
  Status ExpectKeyword(const char* kw) {
    if (ConsumeKeyword(kw)) return Status::OK();
    return Error(std::string("expected '") + kw + "'");
  }
  Status ExpectSymbol(const char* sym) {
    if (ConsumeSymbol(sym)) return Status::OK();
    return Error(std::string("expected '") + sym + "'");
  }
  Status Error(const std::string& what) const {
    return Status::ParseError(StrFormat("%s at offset %d (near '%s')",
                                        what.c_str(), Peek().position,
                                        Peek().text.c_str()));
  }

  Result<std::string> Identifier() {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Status::ParseError(
          StrFormat("expected identifier at offset %d", Peek().position));
    }
    return Advance().text;
  }

  Result<AstSelect> Select();
  Result<AstCreateView> CreateView();
  Result<std::unique_ptr<AstExpr>> Expr();
  Result<std::unique_ptr<AstExpr>> Term();
  Result<std::unique_ptr<AstExpr>> Factor();
  Result<AstPredicate> Comparison();
  Result<std::vector<AstPredicate>> Conjunction();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// Keywords that end an expression / select-item list.
bool IsClauseKeyword(const std::string& word) {
  return word == "from" || word == "where" || word == "group" ||
         word == "having" || word == "and" || word == "as" || word == "by" ||
         word == "select" || word == "create" || word == "view" ||
         word == "order" || word == "asc" || word == "desc";
}

Result<std::unique_ptr<AstExpr>> Parser::Factor() {
  const Token& t = Peek();
  auto node = std::make_unique<AstExpr>();
  switch (t.kind) {
    case TokenKind::kInteger:
      node->kind = AstExpr::Kind::kIntLiteral;
      node->int_value = t.int_value;
      Advance();
      return node;
    case TokenKind::kReal:
      node->kind = AstExpr::Kind::kRealLiteral;
      node->real_value = t.real_value;
      Advance();
      return node;
    case TokenKind::kString:
      node->kind = AstExpr::Kind::kStringLiteral;
      node->string_value = t.text;
      Advance();
      return node;
    case TokenKind::kSymbol:
      if (ConsumeSymbol("(")) {
        AGGVIEW_ASSIGN_OR_RETURN(node, Expr());
        AGGVIEW_RETURN_NOT_OK(ExpectSymbol(")"));
        return node;
      }
      return Error("expected expression");
    case TokenKind::kIdentifier: {
      std::string word = Advance().text;
      // Aggregate call?
      AggKind agg;
      bool is_agg = true;
      if (word == "avg") {
        agg = AggKind::kAvg;
      } else if (word == "sum") {
        agg = AggKind::kSum;
      } else if (word == "count") {
        agg = AggKind::kCount;
      } else if (word == "min") {
        agg = AggKind::kMin;
      } else if (word == "max") {
        agg = AggKind::kMax;
      } else if (word == "median") {
        agg = AggKind::kMedian;
      } else {
        is_agg = false;
        agg = AggKind::kCountStar;  // unused
      }
      if (is_agg && AtSymbol("(")) {
        Advance();  // (
        node->kind = AstExpr::Kind::kAggregate;
        if (agg == AggKind::kCount && ConsumeSymbol("*")) {
          node->agg_kind = AggKind::kCountStar;
        } else {
          node->agg_kind = agg;
          AGGVIEW_ASSIGN_OR_RETURN(node->lhs, Expr());
        }
        AGGVIEW_RETURN_NOT_OK(ExpectSymbol(")"));
        return node;
      }
      // Column reference: name or qualifier.name.
      node->kind = AstExpr::Kind::kColumnRef;
      if (ConsumeSymbol(".")) {
        node->qualifier = word;
        AGGVIEW_ASSIGN_OR_RETURN(node->name, Identifier());
      } else {
        node->name = word;
      }
      return node;
    }
    case TokenKind::kEnd:
      return Error("unexpected end of input");
  }
  return Error("expected expression");
}

Result<std::unique_ptr<AstExpr>> Parser::Term() {
  AGGVIEW_ASSIGN_OR_RETURN(std::unique_ptr<AstExpr> lhs, Factor());
  while (AtSymbol("*") || AtSymbol("/")) {
    ArithOp op = Peek().text == "*" ? ArithOp::kMul : ArithOp::kDiv;
    Advance();
    AGGVIEW_ASSIGN_OR_RETURN(std::unique_ptr<AstExpr> rhs, Factor());
    auto node = std::make_unique<AstExpr>();
    node->kind = AstExpr::Kind::kArith;
    node->arith_op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    lhs = std::move(node);
  }
  return lhs;
}

Result<std::unique_ptr<AstExpr>> Parser::Expr() {
  AGGVIEW_ASSIGN_OR_RETURN(std::unique_ptr<AstExpr> lhs, Term());
  while (AtSymbol("+") || AtSymbol("-")) {
    ArithOp op = Peek().text == "+" ? ArithOp::kAdd : ArithOp::kSub;
    Advance();
    AGGVIEW_ASSIGN_OR_RETURN(std::unique_ptr<AstExpr> rhs, Term());
    auto node = std::make_unique<AstExpr>();
    node->kind = AstExpr::Kind::kArith;
    node->arith_op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    lhs = std::move(node);
  }
  return lhs;
}

Result<AstPredicate> Parser::Comparison() {
  AstPredicate pred;
  AGGVIEW_ASSIGN_OR_RETURN(pred.lhs, Expr());
  if (Peek().kind != TokenKind::kSymbol) return Error("expected comparison operator");
  std::string sym = Advance().text;
  if (sym == "=") {
    pred.op = CompareOp::kEq;
  } else if (sym == "<>") {
    pred.op = CompareOp::kNe;
  } else if (sym == "<") {
    pred.op = CompareOp::kLt;
  } else if (sym == "<=") {
    pred.op = CompareOp::kLe;
  } else if (sym == ">") {
    pred.op = CompareOp::kGt;
  } else if (sym == ">=") {
    pred.op = CompareOp::kGe;
  } else {
    return Error("expected comparison operator");
  }
  AGGVIEW_ASSIGN_OR_RETURN(pred.rhs, Expr());
  return pred;
}

Result<std::vector<AstPredicate>> Parser::Conjunction() {
  std::vector<AstPredicate> preds;
  while (true) {
    AGGVIEW_ASSIGN_OR_RETURN(AstPredicate p, Comparison());
    preds.push_back(std::move(p));
    if (!ConsumeKeyword("and")) break;
  }
  return preds;
}

Result<AstSelect> Parser::Select() {
  AstSelect select;
  AGGVIEW_RETURN_NOT_OK(ExpectKeyword("select"));
  ConsumeKeyword("all");
  ConsumeKeyword("distinct");  // accepted and ignored (results are sets of groups)
  // Select items.
  while (true) {
    AstSelectItem item;
    AGGVIEW_ASSIGN_OR_RETURN(item.expr, Expr());
    if (ConsumeKeyword("as")) {
      AGGVIEW_ASSIGN_OR_RETURN(item.alias, Identifier());
    } else if (Peek().kind == TokenKind::kIdentifier &&
               !IsClauseKeyword(Peek().text)) {
      item.alias = Advance().text;
    }
    select.items.push_back(std::move(item));
    if (!ConsumeSymbol(",")) break;
  }
  AGGVIEW_RETURN_NOT_OK(ExpectKeyword("from"));
  while (true) {
    AstTableRef ref;
    AGGVIEW_ASSIGN_OR_RETURN(ref.table, Identifier());
    if (Peek().kind == TokenKind::kIdentifier && !IsClauseKeyword(Peek().text)) {
      ref.alias = Advance().text;
    } else {
      ref.alias = ref.table;
    }
    select.from.push_back(std::move(ref));
    if (!ConsumeSymbol(",")) break;
  }
  if (ConsumeKeyword("where")) {
    AGGVIEW_ASSIGN_OR_RETURN(select.where, Conjunction());
  }
  if (ConsumeKeyword("group")) {
    AGGVIEW_RETURN_NOT_OK(ExpectKeyword("by"));
    while (true) {
      AGGVIEW_ASSIGN_OR_RETURN(std::unique_ptr<AstExpr> col, Expr());
      if (col->kind != AstExpr::Kind::kColumnRef) {
        return Error("GROUP BY supports column references only");
      }
      select.group_by.push_back(std::move(*col));
      if (!ConsumeSymbol(",")) break;
    }
  }
  if (ConsumeKeyword("having")) {
    AGGVIEW_ASSIGN_OR_RETURN(select.having, Conjunction());
  }
  if (ConsumeKeyword("order")) {
    AGGVIEW_RETURN_NOT_OK(ExpectKeyword("by"));
    while (true) {
      AGGVIEW_ASSIGN_OR_RETURN(std::unique_ptr<AstExpr> col, Expr());
      if (col->kind != AstExpr::Kind::kColumnRef &&
          col->kind != AstExpr::Kind::kAggregate) {
        return Error("ORDER BY supports columns and aggregate outputs only");
      }
      AstOrderKey key;
      key.column = std::move(*col);
      if (ConsumeKeyword("desc")) {
        key.descending = true;
      } else {
        ConsumeKeyword("asc");
      }
      select.order_by.push_back(std::move(key));
      if (!ConsumeSymbol(",")) break;
    }
  }
  return select;
}

Result<AstCreateView> Parser::CreateView() {
  AstCreateView view;
  AGGVIEW_RETURN_NOT_OK(ExpectKeyword("create"));
  AGGVIEW_RETURN_NOT_OK(ExpectKeyword("view"));
  AGGVIEW_ASSIGN_OR_RETURN(view.name, Identifier());
  if (ConsumeSymbol("(")) {
    while (true) {
      AGGVIEW_ASSIGN_OR_RETURN(std::string col, Identifier());
      view.column_names.push_back(std::move(col));
      if (!ConsumeSymbol(",")) break;
    }
    AGGVIEW_RETURN_NOT_OK(ExpectSymbol(")"));
  }
  AGGVIEW_RETURN_NOT_OK(ExpectKeyword("as"));
  AGGVIEW_ASSIGN_OR_RETURN(view.select, Select());
  return view;
}

Result<AstScript> Parser::Script() {
  AstScript script;
  while (AtKeyword("create")) {
    AGGVIEW_ASSIGN_OR_RETURN(AstCreateView view, CreateView());
    script.views.push_back(std::move(view));
    AGGVIEW_RETURN_NOT_OK(ExpectSymbol(";"));
  }
  AGGVIEW_ASSIGN_OR_RETURN(script.query, Select());
  ConsumeSymbol(";");
  if (Peek().kind != TokenKind::kEnd) {
    return Error("trailing input after query");
  }
  return script;
}

Result<AstMatViewDdl> Parser::MatViewDdl(const std::string& sql) {
  AstMatViewDdl ddl;
  if (ConsumeKeyword("refresh")) {
    ddl.refresh = true;
    AGGVIEW_RETURN_NOT_OK(ExpectKeyword("materialized"));
    AGGVIEW_RETURN_NOT_OK(ExpectKeyword("view"));
    AGGVIEW_ASSIGN_OR_RETURN(ddl.name, Identifier());
  } else {
    AGGVIEW_RETURN_NOT_OK(ExpectKeyword("create"));
    AGGVIEW_RETURN_NOT_OK(ExpectKeyword("materialized"));
    AGGVIEW_RETURN_NOT_OK(ExpectKeyword("view"));
    AGGVIEW_ASSIGN_OR_RETURN(ddl.name, Identifier());
    if (ConsumeSymbol("(")) {
      while (true) {
        AGGVIEW_ASSIGN_OR_RETURN(std::string col, Identifier());
        ddl.column_names.push_back(std::move(col));
        if (!ConsumeSymbol(",")) break;
      }
      AGGVIEW_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    AGGVIEW_RETURN_NOT_OK(ExpectKeyword("as"));
    // The definition text is the remainder of the statement, sliced at the
    // first token after AS; the catalog stores it for later re-binding.
    ddl.select_sql = sql.substr(static_cast<size_t>(Peek().position));
    AGGVIEW_ASSIGN_OR_RETURN(ddl.select, Select());
  }
  ConsumeSymbol(";");
  if (Peek().kind != TokenKind::kEnd) {
    return Error("trailing input after statement");
  }
  return ddl;
}

Result<AstSelect> Parser::SingleSelect() {
  AGGVIEW_ASSIGN_OR_RETURN(AstSelect select, Select());
  ConsumeSymbol(";");
  if (Peek().kind != TokenKind::kEnd) {
    return Error("trailing input after query");
  }
  return select;
}

}  // namespace

Result<AstScript> ParseScript(const std::string& sql) {
  AGGVIEW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.Script();
}

Result<AstSelect> ParseSelect(const std::string& sql) {
  AGGVIEW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.SingleSelect();
}

Result<AstMatViewDdl> ParseMatViewDdl(const std::string& sql) {
  AGGVIEW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.MatViewDdl(sql);
}

bool IsMatViewDdl(const std::string& sql) {
  Result<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return false;
  const std::vector<Token>& t = *tokens;
  auto kw = [&](size_t i, const char* w) {
    return i < t.size() && t[i].kind == TokenKind::kIdentifier &&
           t[i].text == w;
  };
  if (kw(0, "refresh") && kw(1, "materialized")) return true;
  return kw(0, "create") && kw(1, "materialized");
}

}  // namespace aggview
