#include "sql/binder.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/string_util.h"
#include "sql/parser.h"

namespace aggview {

namespace {

/// Resolution scope: per range-variable alias the column names, plus view
/// instance outputs.
class Scope {
 public:
  /// Adds a base range variable's columns under `alias`.
  void AddRangeVar(const Query& query, int rel_id) {
    const RangeVar& rv = query.range_var(rel_id);
    const TableDef& def = query.catalog().table(rv.table);
    auto& cols = by_alias_[rv.alias];
    for (int i = 0; i < def.schema.num_columns(); ++i) {
      cols[def.schema.column(i).name] = rv.columns[static_cast<size_t>(i)];
    }
  }

  /// Adds a view instance's output columns under `alias`.
  void AddViewOutputs(const std::string& alias,
                      const std::vector<std::pair<std::string, ColId>>& outputs) {
    auto& cols = by_alias_[alias];
    for (const auto& [name, id] : outputs) cols[name] = id;
  }

  Result<ColId> Resolve(const std::string& qualifier,
                        const std::string& name) const {
    if (!qualifier.empty()) {
      auto it = by_alias_.find(qualifier);
      if (it == by_alias_.end()) {
        return Status::BindError("unknown alias '" + qualifier + "'");
      }
      auto cit = it->second.find(name);
      if (cit == it->second.end()) {
        return Status::BindError("no column '" + name + "' in '" + qualifier + "'");
      }
      return cit->second;
    }
    ColId found = kInvalidColId;
    for (const auto& [alias, cols] : by_alias_) {
      auto cit = cols.find(name);
      if (cit == cols.end()) continue;
      if (found != kInvalidColId && found != cit->second) {
        return Status::BindError("ambiguous column '" + name + "'");
      }
      found = cit->second;
    }
    if (found == kInvalidColId) {
      return Status::BindError("unknown column '" + name + "'");
    }
    return found;
  }

 private:
  std::map<std::string, std::map<std::string, ColId>> by_alias_;
};

class Binder {
 public:
  explicit Binder(const Catalog& catalog) : catalog_(catalog) {}

  Result<Query> Bind(const AstScript& script);

 private:
  /// Binds a scalar AST expression (no aggregates allowed) in `scope`.
  Result<ExprPtr> BindScalar(const AstExpr& ast, const Scope& scope) const;

  Result<Predicate> BindPredicate(const AstPredicate& ast,
                                  const Scope& scope) const;

  /// Binds an aggregate call `agg(col)` / `count(*)`, reusing an existing
  /// call with the same rendering or appending a new one to `calls`.
  Result<ColId> BindAggregate(const AstExpr& ast, const Scope& scope,
                              Query* query,
                              std::vector<AggregateCall>* calls,
                              std::unordered_map<std::string, ColId>* known)
      const;

  /// Instantiates a view definition as an AggView of `query`, returning the
  /// output name → ColId list (positional view column names applied).
  Result<std::vector<std::pair<std::string, ColId>>> InstantiateView(
      const AstCreateView& def, const std::string& alias, Query* query,
      AggView* out) const;

  const Catalog& catalog_;
};

Result<ExprPtr> Binder::BindScalar(const AstExpr& ast,
                                   const Scope& scope) const {
  switch (ast.kind) {
    case AstExpr::Kind::kColumnRef: {
      AGGVIEW_ASSIGN_OR_RETURN(ColId id, scope.Resolve(ast.qualifier, ast.name));
      return Col(id);
    }
    case AstExpr::Kind::kIntLiteral:
      return LitInt(ast.int_value);
    case AstExpr::Kind::kRealLiteral:
      return LitReal(ast.real_value);
    case AstExpr::Kind::kStringLiteral:
      return LitStr(ast.string_value);
    case AstExpr::Kind::kArith: {
      AGGVIEW_ASSIGN_OR_RETURN(ExprPtr lhs, BindScalar(*ast.lhs, scope));
      AGGVIEW_ASSIGN_OR_RETURN(ExprPtr rhs, BindScalar(*ast.rhs, scope));
      return Arith(ast.arith_op, std::move(lhs), std::move(rhs));
    }
    case AstExpr::Kind::kAggregate:
      return Status::BindError(
          "aggregate '" + ast.ToString() +
          "' is not allowed here (only in SELECT or HAVING of a grouped query)");
  }
  return Status::BindError("unsupported expression");
}

Result<Predicate> Binder::BindPredicate(const AstPredicate& ast,
                                        const Scope& scope) const {
  AGGVIEW_ASSIGN_OR_RETURN(ExprPtr lhs, BindScalar(*ast.lhs, scope));
  AGGVIEW_ASSIGN_OR_RETURN(ExprPtr rhs, BindScalar(*ast.rhs, scope));
  return Predicate(std::move(lhs), ast.op, std::move(rhs));
}

Result<ColId> Binder::BindAggregate(
    const AstExpr& ast, const Scope& scope, Query* query,
    std::vector<AggregateCall>* calls,
    std::unordered_map<std::string, ColId>* known) const {
  if (ast.kind != AstExpr::Kind::kAggregate) {
    return Status::BindError("expected an aggregate call, got '" +
                             ast.ToString() + "'");
  }
  std::string rendering = ast.ToString();
  auto it = known->find(rendering);
  if (it != known->end()) return it->second;

  AggregateCall call;
  call.kind = ast.agg_kind;
  std::string display;
  if (ast.agg_kind == AggKind::kCountStar) {
    display = "count(*)";
  } else {
    if (ast.lhs == nullptr || ast.lhs->kind != AstExpr::Kind::kColumnRef) {
      return Status::BindError("aggregate arguments must be single columns: '" +
                               rendering + "'");
    }
    AGGVIEW_ASSIGN_OR_RETURN(
        ColId arg, scope.Resolve(ast.lhs->qualifier, ast.lhs->name));
    call.args.push_back(arg);
    display = std::string(AggKindName(ast.agg_kind)) + "(" +
              query->columns().name(arg) + ")";
  }
  DataType type = call.ResultType(query->columns());
  call.output = query->AddAggregateOutput(call.kind, call.args, display, type);
  ColId out = call.output;
  calls->push_back(std::move(call));
  (*known)[rendering] = out;
  return out;
}

Result<std::vector<std::pair<std::string, ColId>>> Binder::InstantiateView(
    const AstCreateView& def, const std::string& alias, Query* query,
    AggView* out) const {
  out->name = alias;
  Scope scope;
  std::set<std::string> used_aliases;
  for (const AstTableRef& ref : def.select.from) {
    if (!used_aliases.insert(ref.alias).second) {
      return Status::BindError("duplicate range variable alias '" + ref.alias +
                               "' in view '" + def.name + "'");
    }
    AGGVIEW_ASSIGN_OR_RETURN(TableId table, catalog_.FindTable(ref.table));
    // Prefix range-variable aliases with the view alias so two instances of
    // the same view do not collide.
    std::string rv_alias = alias + "." + ref.alias;
    int rel = query->AddRangeVar(table, rv_alias);
    out->spj.rels.push_back(rel);
    // Make both "e" and "v1.e" resolve within the view body.
    const RangeVar& rv = query->range_var(rel);
    const TableDef& table_def = catalog_.table(rv.table);
    auto outputs = std::vector<std::pair<std::string, ColId>>();
    for (int i = 0; i < table_def.schema.num_columns(); ++i) {
      outputs.emplace_back(table_def.schema.column(i).name,
                           rv.columns[static_cast<size_t>(i)]);
    }
    scope.AddViewOutputs(ref.alias, outputs);
  }
  for (const AstPredicate& p : def.select.where) {
    AGGVIEW_ASSIGN_OR_RETURN(Predicate pred, BindPredicate(p, scope));
    out->spj.predicates.push_back(std::move(pred));
  }
  if (def.select.group_by.empty()) {
    return Status::BindError("view '" + def.name +
                             "' must have a GROUP BY (aggregate view)");
  }
  std::set<ColId> grouping_set;
  for (const AstExpr& g : def.select.group_by) {
    AGGVIEW_ASSIGN_OR_RETURN(ColId id, scope.Resolve(g.qualifier, g.name));
    if (grouping_set.insert(id).second) {
      out->group_by.grouping.push_back(id);
    }
  }

  std::unordered_map<std::string, ColId> known_aggs;
  std::vector<std::pair<std::string, ColId>> outputs;
  for (size_t i = 0; i < def.select.items.size(); ++i) {
    const AstSelectItem& item = def.select.items[i];
    std::string out_name;
    if (i < def.column_names.size()) {
      out_name = def.column_names[i];
    } else if (!item.alias.empty()) {
      out_name = item.alias;
    } else if (item.expr->kind == AstExpr::Kind::kColumnRef) {
      out_name = item.expr->name;
    } else {
      return Status::BindError(
          "view '" + def.name +
          "' needs a column name for item: " + item.expr->ToString());
    }
    if (item.expr->kind == AstExpr::Kind::kColumnRef) {
      AGGVIEW_ASSIGN_OR_RETURN(
          ColId id, scope.Resolve(item.expr->qualifier, item.expr->name));
      if (grouping_set.count(id) == 0) {
        return Status::BindError("view select item '" + item.expr->ToString() +
                                 "' is not a grouping column");
      }
      outputs.emplace_back(out_name, id);
    } else if (item.expr->kind == AstExpr::Kind::kAggregate) {
      AGGVIEW_ASSIGN_OR_RETURN(
          ColId id, BindAggregate(*item.expr, scope, query,
                                  &out->group_by.aggregates, &known_aggs));
      outputs.emplace_back(out_name, id);
    } else {
      return Status::BindError(
          "view select items must be grouping columns or aggregates: '" +
          item.expr->ToString() + "'");
    }
  }

  // HAVING: comparisons whose sides are aggregates, grouping columns, or
  // literals.
  for (const AstPredicate& p : def.select.having) {
    auto bind_side = [&](const AstExpr& side) -> Result<ExprPtr> {
      if (side.kind == AstExpr::Kind::kAggregate) {
        AGGVIEW_ASSIGN_OR_RETURN(
            ColId id, BindAggregate(side, scope, query,
                                    &out->group_by.aggregates, &known_aggs));
        return Col(id);
      }
      if (side.ContainsAggregate()) {
        return Status::BindError(
            "arithmetic over aggregates in HAVING is not supported: '" +
            side.ToString() + "'");
      }
      return BindScalar(side, scope);
    };
    AGGVIEW_ASSIGN_OR_RETURN(ExprPtr lhs, bind_side(*p.lhs));
    AGGVIEW_ASSIGN_OR_RETURN(ExprPtr rhs, bind_side(*p.rhs));
    out->group_by.having.emplace_back(std::move(lhs), p.op, std::move(rhs));
  }
  return outputs;
}

Result<Query> Binder::Bind(const AstScript& script) {
  Query query(&catalog_);

  std::map<std::string, const AstCreateView*> view_defs;
  for (const AstCreateView& v : script.views) {
    if (!view_defs.emplace(v.name, &v).second) {
      return Status::BindError("duplicate view '" + v.name + "'");
    }
    if (catalog_.FindTable(v.name).ok()) {
      return Status::BindError("view '" + v.name + "' shadows a base table");
    }
  }

  // FROM of the main query.
  Scope scope;
  std::set<std::string> used_aliases;
  for (const AstTableRef& ref : script.query.from) {
    if (!used_aliases.insert(ref.alias).second) {
      return Status::BindError("duplicate range variable alias '" + ref.alias +
                               "' in FROM");
    }
    auto def_it = view_defs.find(ref.table);
    if (def_it != view_defs.end()) {
      AggView view;
      AGGVIEW_ASSIGN_OR_RETURN(
          auto outputs,
          InstantiateView(*def_it->second, ref.alias, &query, &view));
      query.views().push_back(std::move(view));
      scope.AddViewOutputs(ref.alias, outputs);
      continue;
    }
    // Catalog materialized views resolve like logical views: the stored
    // definition is inlined as an AggView block (the view-matching rewriter
    // may later replace the block with a scan of the backing table).
    if (const ViewDefinition* mv = catalog_.FindView(ref.table)) {
      AstCreateView def;
      def.name = mv->name;
      def.column_names = mv->column_names;
      AGGVIEW_ASSIGN_OR_RETURN(def.select, ParseSelect(mv->definition_sql));
      AggView view;
      AGGVIEW_ASSIGN_OR_RETURN(
          auto outputs, InstantiateView(def, ref.alias, &query, &view));
      query.views().push_back(std::move(view));
      scope.AddViewOutputs(ref.alias, outputs);
      continue;
    }
    AGGVIEW_ASSIGN_OR_RETURN(TableId table, catalog_.FindTable(ref.table));
    int rel = query.AddRangeVar(table, ref.alias);
    query.base_rels().push_back(rel);
    scope.AddRangeVar(query, rel);
  }

  for (const AstPredicate& p : script.query.where) {
    if (p.lhs->ContainsAggregate() || p.rhs->ContainsAggregate()) {
      return Status::BindError("aggregates are not allowed in WHERE");
    }
    AGGVIEW_ASSIGN_OR_RETURN(Predicate pred, BindPredicate(p, scope));
    query.predicates().push_back(std::move(pred));
  }

  bool has_aggregates = !script.query.group_by.empty();
  for (const AstSelectItem& item : script.query.items) {
    if (item.expr->ContainsAggregate()) has_aggregates = true;
  }
  for (const AstPredicate& p : script.query.having) {
    if (p.lhs->ContainsAggregate() || p.rhs->ContainsAggregate()) {
      has_aggregates = true;
    }
  }

  if (has_aggregates) {
    GroupBySpec g0;
    std::set<ColId> grouping_set;
    for (const AstExpr& g : script.query.group_by) {
      AGGVIEW_ASSIGN_OR_RETURN(ColId id, scope.Resolve(g.qualifier, g.name));
      if (grouping_set.insert(id).second) g0.grouping.push_back(id);
    }
    std::unordered_map<std::string, ColId> known_aggs;
    for (const AstSelectItem& item : script.query.items) {
      if (item.expr->kind == AstExpr::Kind::kAggregate) {
        AGGVIEW_ASSIGN_OR_RETURN(
            ColId id, BindAggregate(*item.expr, scope, &query, &g0.aggregates,
                                    &known_aggs));
        query.select_list().push_back(id);
      } else if (item.expr->kind == AstExpr::Kind::kColumnRef) {
        AGGVIEW_ASSIGN_OR_RETURN(
            ColId id, scope.Resolve(item.expr->qualifier, item.expr->name));
        if (grouping_set.count(id) == 0) {
          return Status::BindError("select item '" + item.expr->ToString() +
                                   "' is not a grouping column");
        }
        query.select_list().push_back(id);
      } else {
        return Status::BindError(
            "grouped select items must be grouping columns or aggregates: '" +
            item.expr->ToString() + "'");
      }
    }
    for (const AstPredicate& p : script.query.having) {
      auto bind_side = [&](const AstExpr& side) -> Result<ExprPtr> {
        if (side.kind == AstExpr::Kind::kAggregate) {
          AGGVIEW_ASSIGN_OR_RETURN(
              ColId id, BindAggregate(side, scope, &query, &g0.aggregates,
                                      &known_aggs));
          return Col(id);
        }
        if (side.ContainsAggregate()) {
          return Status::BindError(
              "arithmetic over aggregates in HAVING is not supported: '" +
              side.ToString() + "'");
        }
        return BindScalar(side, scope);
      };
      AGGVIEW_ASSIGN_OR_RETURN(ExprPtr lhs, bind_side(*p.lhs));
      AGGVIEW_ASSIGN_OR_RETURN(ExprPtr rhs, bind_side(*p.rhs));
      g0.having.emplace_back(std::move(lhs), p.op, std::move(rhs));
    }
    for (const AstOrderKey& key : script.query.order_by) {
      if (key.column.kind == AstExpr::Kind::kAggregate) {
        AGGVIEW_ASSIGN_OR_RETURN(
            ColId id, BindAggregate(key.column, scope, &query, &g0.aggregates,
                                    &known_aggs));
        query.order_by().push_back({id, key.descending});
      } else {
        AGGVIEW_ASSIGN_OR_RETURN(
            ColId id, scope.Resolve(key.column.qualifier, key.column.name));
        query.order_by().push_back({id, key.descending});
      }
    }
    query.top_group_by() = std::move(g0);
  } else {
    for (const AstSelectItem& item : script.query.items) {
      if (item.expr->kind != AstExpr::Kind::kColumnRef) {
        return Status::BindError(
            "ungrouped select items must be plain columns: '" +
            item.expr->ToString() + "'");
      }
      AGGVIEW_ASSIGN_OR_RETURN(
          ColId id, scope.Resolve(item.expr->qualifier, item.expr->name));
      query.select_list().push_back(id);
    }
    for (const AstOrderKey& key : script.query.order_by) {
      if (key.column.kind == AstExpr::Kind::kAggregate) {
        return Status::BindError(
            "ORDER BY aggregate requires a grouped query");
      }
      AGGVIEW_ASSIGN_OR_RETURN(
          ColId id, scope.Resolve(key.column.qualifier, key.column.name));
      query.order_by().push_back({id, key.descending});
    }
  }

  AGGVIEW_RETURN_NOT_OK(query.Validate());
  return query;
}

}  // namespace

Result<Query> BindScript(const Catalog& catalog, const AstScript& script) {
  Binder binder(catalog);
  return binder.Bind(script);
}

Result<Query> ParseAndBind(const Catalog& catalog, const std::string& sql) {
  AGGVIEW_ASSIGN_OR_RETURN(AstScript script, ParseScript(sql));
  return BindScript(catalog, script);
}

}  // namespace aggview
