#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace aggview {

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();

  auto make = [&](TokenKind kind, std::string text, int pos) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.position = pos;
    return t;
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    int pos = static_cast<int>(i);
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tokens.push_back(make(TokenKind::kIdentifier,
                            ToLower(sql.substr(start, i - start)), pos));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_real = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_real = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text = sql.substr(start, i - start);
      Token t = make(is_real ? TokenKind::kReal : TokenKind::kInteger, text, pos);
      if (is_real) {
        t.real_value = std::stod(text);
      } else {
        t.int_value = std::stoll(text);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      size_t start = ++i;
      while (i < n && sql[i] != '\'') ++i;
      if (i >= n) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %d", pos));
      }
      tokens.push_back(
          make(TokenKind::kString, sql.substr(start, i - start), pos));
      ++i;  // closing quote
      continue;
    }
    // Two-character symbols.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<>" || two == "<=" || two == ">=" || two == "!=") {
        tokens.push_back(make(TokenKind::kSymbol, two == "!=" ? "<>" : two, pos));
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '=':
      case '<':
      case '>':
      case '(':
      case ')':
      case ',':
      case '.':
      case '*':
      case '+':
      case '-':
      case '/':
      case ';':
        tokens.push_back(make(TokenKind::kSymbol, std::string(1, c), pos));
        ++i;
        continue;
      default:
        return Status::ParseError(
            StrFormat("unexpected character '%c' at offset %d", c, pos));
    }
  }
  tokens.push_back(make(TokenKind::kEnd, "", static_cast<int>(n)));
  return tokens;
}

}  // namespace aggview
