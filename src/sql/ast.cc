#include "sql/ast.h"

#include <cstdio>

namespace aggview {

std::unique_ptr<AstExpr> AstExpr::Clone() const {
  auto out = std::make_unique<AstExpr>();
  out->kind = kind;
  out->qualifier = qualifier;
  out->name = name;
  out->int_value = int_value;
  out->real_value = real_value;
  out->string_value = string_value;
  out->arith_op = arith_op;
  out->agg_kind = agg_kind;
  if (lhs != nullptr) out->lhs = lhs->Clone();
  if (rhs != nullptr) out->rhs = rhs->Clone();
  return out;
}

bool AstExpr::ContainsAggregate() const {
  if (kind == Kind::kAggregate) return true;
  if (lhs != nullptr && lhs->ContainsAggregate()) return true;
  if (rhs != nullptr && rhs->ContainsAggregate()) return true;
  return false;
}

std::string AstExpr::ToString() const {
  switch (kind) {
    case Kind::kColumnRef:
      return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kIntLiteral:
      return std::to_string(int_value);
    case Kind::kRealLiteral: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", real_value);
      return buf;
    }
    case Kind::kStringLiteral:
      return "'" + string_value + "'";
    case Kind::kArith: {
      const char* op = "+";
      switch (arith_op) {
        case ArithOp::kAdd:
          op = "+";
          break;
        case ArithOp::kSub:
          op = "-";
          break;
        case ArithOp::kMul:
          op = "*";
          break;
        case ArithOp::kDiv:
          op = "/";
          break;
      }
      return "(" + lhs->ToString() + " " + op + " " + rhs->ToString() + ")";
    }
    case Kind::kAggregate: {
      if (agg_kind == AggKind::kCountStar) return "count(*)";
      std::string name_str = AggKindName(agg_kind);
      return name_str + "(" + (lhs != nullptr ? lhs->ToString() : "") + ")";
    }
  }
  return "?";
}

}  // namespace aggview
