#ifndef AGGVIEW_SQL_PARSER_H_
#define AGGVIEW_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace aggview {

/// Parses a script of the SQL subset used by the paper:
///
///   CREATE VIEW name [(col, ...)] AS
///     SELECT items FROM tables [WHERE conj] GROUP BY cols [HAVING conj] ;
///   ...
///   SELECT items FROM tables [WHERE conj] [GROUP BY cols [HAVING conj]] [;]
///
/// Predicates are conjunctions of comparisons (`AND` only, matching the
/// query class of Section 2); expressions support + - * / over columns and
/// literals; aggregates are AVG/SUM/COUNT/MIN/MAX/MEDIAN and COUNT(*).
Result<AstScript> ParseScript(const std::string& sql);

/// Parses a single SELECT statement.
Result<AstSelect> ParseSelect(const std::string& sql);

/// Parses one materialized-view DDL statement:
///
///   CREATE MATERIALIZED VIEW name [(col, ...)] AS select [;]
///   REFRESH MATERIALIZED VIEW name [;]
///
/// For CREATE, `select_sql` holds the definition text after AS verbatim.
Result<AstMatViewDdl> ParseMatViewDdl(const std::string& sql);

/// Cheap classifier: does `sql` start like a materialized-view DDL
/// statement? (Used by the session layer to dispatch before parsing.)
bool IsMatViewDdl(const std::string& sql);

}  // namespace aggview

#endif  // AGGVIEW_SQL_PARSER_H_
