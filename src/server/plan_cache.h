#ifndef AGGVIEW_SERVER_PLAN_CACHE_H_
#define AGGVIEW_SERVER_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "optimizer/aggview_optimizer.h"

namespace aggview {

/// Point-in-time counters of a PlanCache, surfaced by the serving layer the
/// way EXPLAIN surfaces plan facts: every Sql() path increments exactly one
/// of hits/misses, and the throughput benchmark asserts the repeated-query
/// speedup against them.
struct PlanCacheStats {
  /// Lookups answered from the cache (parse/bind/optimize skipped).
  int64_t hits = 0;
  /// Lookups that found nothing usable and paid the full optimization.
  int64_t misses = 0;
  /// Entries dropped because the cache was full (LRU victim).
  int64_t evictions = 0;
  /// Entries dropped because the catalog's stats epoch moved past them: the
  /// plan was optimized against statistics/data that no longer exist.
  int64_t invalidations = 0;
  /// Hits served from entries that outlived a global stats-epoch bump
  /// because every individual dependency (per-table / per-view epoch) still
  /// matched — exactly the invalidations whole-cache epoch keying would have
  /// inflicted and the dependency stamps avoided.
  int64_t avoided_invalidations = 0;
  /// Current number of cached plans and the configured ceiling.
  int64_t size = 0;
  int64_t capacity = 0;

  /// One-line rendering ("plan cache: 12 hits, 3 misses, ..."), for shells
  /// and EXPLAIN-style diagnostics.
  std::string ToString() const;
};

/// Normalizes SQL text for plan-cache keying: lower-cases everything outside
/// single-quoted string literals, strips '--' to end-of-line comments
/// (exactly the text the lexer discards), collapses whitespace runs (spaces,
/// tabs, newlines) to one space, trims the ends, and drops a trailing
/// semicolon — so textual re-spellings of the same statement share one cache
/// entry while statements that tokenize differently never do. String
/// literals are preserved byte-for-byte (SQL string comparison is
/// case-sensitive; 'Sales' and 'sales' are different constants).
std::string NormalizeSql(const std::string& sql);

/// One dependency stamp of a cached plan: a catalog object the plan reads —
/// "t:<table id>" for a table scan (base or view backing), "v:<name>" for a
/// materialized view the rewriter answered from — with the epoch observed at
/// optimize time. A plan is servable exactly while every stamp still matches
/// the object's current epoch.
struct PlanDependency {
  std::string name;
  int64_t epoch = 0;
};

/// Maps a dependency name to its current epoch, or -1 when the object no
/// longer exists (a dropped view); -1 never matches a stamp.
using DependencyResolver = std::function<int64_t(const std::string&)>;

/// An LRU cache of optimized query plans, shared by every session of a
/// Server.
///
/// The key is the normalized SQL text plus the optimizer-configuration
/// fingerprint (the caller appends it; see Server::Prepare). Each entry is
/// additionally stamped with the catalog stats epoch it was optimized under:
/// a lookup whose current epoch differs from the entry's drops the entry and
/// counts an invalidation — a plan optimized against stale statistics or
/// vanished data must never be served, however textually equal the SQL.
///
/// Thread-safe: every operation takes the cache mutex; the cached
/// OptimizedQuery objects themselves are immutable and may be executed by
/// any number of sessions concurrently.
class PlanCache {
 public:
  /// A cache that holds at most `capacity` plans (LRU eviction). Capacity 0
  /// disables caching: Lookup always misses and Insert is a no-op.
  explicit PlanCache(int64_t capacity);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `key` if still fresh; null on miss.
  /// Freshness: when the entry carries dependency stamps and `resolver` is
  /// provided, every stamp must match its current epoch — the global `epoch`
  /// is then only consulted to count avoided invalidations (a dependency-
  /// fresh entry whose global stamp is stale survived exactly one
  /// whole-cache invalidation). Entries without stamps (or lookups without a
  /// resolver) fall back to whole-cache keying: the entry's global epoch
  /// must equal `epoch`. A stale entry is erased, counts as an
  /// invalidation, and misses.
  std::shared_ptr<const OptimizedQuery> Lookup(
      const std::string& key, int64_t epoch,
      const DependencyResolver& resolver = nullptr);

  /// Caches `plan` under `key` at `epoch` with its dependency stamps (pass
  /// an empty vector to key on the global epoch alone), evicting the least
  /// recently used entry when full. Re-inserting an existing key replaces
  /// the entry (last writer wins; two sessions racing to optimize the same
  /// fresh statement both produce equivalent plans).
  void Insert(const std::string& key, int64_t epoch,
              std::shared_ptr<const OptimizedQuery> plan,
              std::vector<PlanDependency> deps = {});

  /// Drops every entry (counters keep accumulating).
  void Clear();

  PlanCacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    int64_t epoch = 0;
    std::shared_ptr<const OptimizedQuery> plan;
    std::vector<PlanDependency> deps;
  };

  mutable Mutex mu_;
  const int64_t capacity_;
  /// Front = most recently used.
  std::list<Entry> lru_ AGGVIEW_GUARDED_BY(mu_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      AGGVIEW_GUARDED_BY(mu_);
  int64_t hits_ AGGVIEW_GUARDED_BY(mu_) = 0;
  int64_t misses_ AGGVIEW_GUARDED_BY(mu_) = 0;
  int64_t evictions_ AGGVIEW_GUARDED_BY(mu_) = 0;
  int64_t invalidations_ AGGVIEW_GUARDED_BY(mu_) = 0;
  int64_t avoided_invalidations_ AGGVIEW_GUARDED_BY(mu_) = 0;
};

}  // namespace aggview

#endif  // AGGVIEW_SERVER_PLAN_CACHE_H_
