#ifndef AGGVIEW_SERVER_SERVER_H_
#define AGGVIEW_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "exec/exec_context.h"
#include "exec/executor.h"
#include "optimizer/aggview_optimizer.h"
#include "server/plan_cache.h"
#include "view/maintenance.h"

namespace aggview {

class Server;
class ServerSession;
class ThreadPool;

/// Server-wide configuration, fixed at construction (the plan-cache key
/// depends on it being immutable while serving).
struct ServerOptions {
  /// Size of the shared worker pool every query's morsel-parallel regions
  /// run on (intra-query parallelism; 1 = serial execution).
  int threads = 1;
  /// Batch capacity of every operator tree the server runs.
  int batch_size = kDefaultBatchSize;
  /// Execution backend for every query the server runs (interpreter or
  /// compiled). Part of the plan-cache configuration fingerprint.
  ExecBackend backend = ExecBackend::kInterpret;
  /// How hard lowering statically checks each compiled bytecode program
  /// before it may execute (exec/compile/verifier.h); only the compiled
  /// backend runs bytecode.
  BytecodeVerifyMode bytecode_verify = BytecodeVerifyMode::kOn;
  /// Optimize with the traditional two-phase optimizer instead of the
  /// paper's aggregate-view optimizer (for comparisons).
  bool use_traditional = false;
  /// Options of the aggregate-view optimizer (ignored by use_traditional).
  OptimizerOptions optimizer;
  /// Answer queries from fresh materialized views when one matches
  /// (view/rewriter.h), before either optimizer runs. Part of the plan-cache
  /// configuration fingerprint.
  bool use_materialized_views = true;
  /// Maximum number of plans the shared plan cache holds (LRU beyond that);
  /// 0 disables plan caching entirely.
  int64_t plan_cache_capacity = 256;
  /// Admission control: at most this many statements execute at once;
  /// excess Execute() calls queue FIFO (no starvation). 0 = unlimited —
  /// every statement runs immediately and inter-query fairness degrades to
  /// the thread pool's per-region FIFO lease.
  int max_concurrent_queries = 0;

  /// Serial, default batch size, interpreting backend — unless the
  /// environment overrides them (AGGVIEW_TEST_THREADS /
  /// AGGVIEW_TEST_BATCH_SIZE / AGGVIEW_TEST_BACKEND via
  /// ExecDefaults::FromEnv(), the same knobs ExecContext::Default() reads).
  static ServerOptions Default();
};

/// FIFO admission controller: a counting semaphore whose waiters are served
/// strictly in arrival order, so a steady stream of cheap queries can never
/// starve an expensive one out of its execution slot.
class AdmissionController {
 public:
  /// At most `limit` concurrent holders; `limit` <= 0 means unlimited.
  explicit AdmissionController(int limit) : limit_(limit) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until admitted. Every Enter must be paired with one Exit.
  void Enter();
  void Exit();

  /// Largest number of concurrent holders observed (== limit under load;
  /// asserted by the admission tests).
  int peak_running() const;
  /// Total number of admissions actually granted so far (Enter() calls that
  /// have returned; callers still blocked waiting are not counted).
  int64_t total_admitted() const;

 private:
  const int limit_;
  mutable Mutex mu_;
  std::condition_variable_any cv_;
  /// Next ticket to hand out; tickets are admitted in ticket order as
  /// soon as `ticket < finished_ + limit_` (a FIFO counting semaphore).
  int64_t next_ticket_ AGGVIEW_GUARDED_BY(mu_) = 0;
  int64_t finished_ AGGVIEW_GUARDED_BY(mu_) = 0;
  /// Enter() calls past the wait loop, i.e. admissions granted — distinct
  /// from next_ticket_, which also counts callers still blocked.
  int64_t admitted_ AGGVIEW_GUARDED_BY(mu_) = 0;
  int running_ AGGVIEW_GUARDED_BY(mu_) = 0;
  int peak_running_ AGGVIEW_GUARDED_BY(mu_) = 0;
};

/// A statement prepared through a Server: the (possibly cache-shared)
/// optimized plan plus everything needed to run it on the server's pool
/// under admission control. Obtained from ServerSession::Sql; any number of
/// ServerQuery objects — across any number of client threads — may hold and
/// execute the same cached plan concurrently.
///
/// Like PreparedQuery, lifetime is guarded explicitly: executing a query
/// whose Server has been destroyed, or a moved-from query, returns a clear
/// error Status instead of dereferencing a dangling pointer. A move
/// transfers the right to execute but leaves the source with shared read
/// access to the immutable plan, so the introspection accessors — Explain(),
/// plan(), query(), description() — stay valid on a moved-from query too.
class ServerQuery {
 public:
  ServerQuery(ServerQuery&& other) noexcept
      : server_(std::move(other.server_)),
        // Copied, not moved: the plan is immutable and shared; keeping it
        // makes every accessor on the moved-from query safe, while the
        // nulled server_ token still refuses Execute/ExplainAnalyze.
        optimized_(other.optimized_),
        cache_hit_(other.cache_hit_),
        last_io_pages_(other.last_io_pages_) {}
  ServerQuery& operator=(ServerQuery&& other) noexcept {
    server_ = std::move(other.server_);
    optimized_ = other.optimized_;
    cache_hit_ = other.cache_hit_;
    last_io_pages_ = other.last_io_pages_;
    return *this;
  }

  /// Runs the plan on the server's shared pool, gated by the server's
  /// admission controller, and materializes the result.
  Result<QueryResult> Execute();

  /// The optimizer's one-line rationale plus the physical plan tree.
  std::string Explain() const;

  /// Runs the plan instrumented and renders the annotated plan tree.
  Result<std::string> ExplainAnalyze();

  /// True when Sql() answered this statement from the plan cache (the
  /// parse/bind/optimize pipeline was skipped entirely).
  bool cache_hit() const { return cache_hit_; }

  /// True when the plan answers at least one block from a materialized
  /// view's backing table (its cache entry then also carries that view's
  /// epoch as a dependency stamp).
  bool view_backed() const { return !optimized_->audit.view_rewrites.empty(); }

  const PlanPtr& plan() const { return optimized_->plan; }
  const Query& query() const { return optimized_->query; }
  const std::string& description() const { return optimized_->description; }
  /// Pages (reads + writes) charged by the most recent Execute /
  /// ExplainAnalyze, -1 before the first run.
  int64_t last_io_pages() const { return last_io_pages_; }

 private:
  friend class ServerSession;
  ServerQuery(std::shared_ptr<Server*> server,
              std::shared_ptr<const OptimizedQuery> optimized, bool cache_hit)
      : server_(std::move(server)),
        optimized_(std::move(optimized)),
        cache_hit_(cache_hit) {}

  /// Resolves the owning Server, or an error when this query was moved from
  /// or the Server has been destroyed.
  Result<Server*> server() const;

  std::shared_ptr<Server*> server_;
  std::shared_ptr<const OptimizedQuery> optimized_;
  bool cache_hit_ = false;
  int64_t last_io_pages_ = -1;
};

/// A client connection to a Server: a cheap value handle safe to move to
/// any thread. Each concurrent client thread should hold its own session
/// (sessions themselves are not synchronized); all sessions share the
/// server's catalog, plan cache, worker pool and admission controller.
class ServerSession {
 public:
  ServerSession(ServerSession&&) = default;
  ServerSession& operator=(ServerSession&&) = default;

  /// Parses, binds and optimizes one statement — or skips all three when
  /// the server's plan cache already holds a plan for the normalized text
  /// whose every dependency (table and view epochs) is unchanged under the
  /// current optimizer configuration.
  Result<ServerQuery> Sql(const std::string& text);

  /// Runs one materialized-view DDL statement (`CREATE MATERIALIZED VIEW
  /// name [(cols)] AS select` or `REFRESH MATERIALIZED VIEW name`) under the
  /// server's exclusive catalog lock, returning a one-line confirmation.
  /// Safe to call while other sessions execute queries: they drain first.
  Result<std::string> ExecuteDdl(const std::string& text);

  /// Applies a base-table delta (view/maintenance.h) under the server's
  /// exclusive catalog lock, incrementally maintaining every fresh
  /// single-relation view and marking the rest stale. Per-table epoch bumps
  /// invalidate exactly the cached plans that read the mutated objects.
  Status ApplyDelta(const TableDelta& delta, MaintenanceReport* report =
                                                 nullptr);

  /// This connection's id (1-based, in Connect() order).
  int id() const { return id_; }

 private:
  friend class Server;
  ServerSession(std::shared_ptr<Server*> server, int id)
      : server_(std::move(server)), id_(id) {}

  std::shared_ptr<Server*> server_;
  int id_ = 0;
};

/// The multi-query serving layer: one object owning the catalog, the plan
/// cache, the shared worker pool and the admission controller, serving any
/// number of concurrently connected client sessions.
///
///   Server server(ServerOptions{.threads = 8, .max_concurrent_queries = 4});
///   ... populate server.catalog() (tables + stats + data), then serve ...
///   ServerSession conn = server.Connect();             // one per client
///   AGGVIEW_ASSIGN_OR_RETURN(ServerQuery q, conn.Sql("SELECT ..."));
///   AGGVIEW_ASSIGN_OR_RETURN(QueryResult result, q.Execute());
///
/// Concurrency contract: Connect() and every ServerSession/ServerQuery
/// operation are safe from any thread once the catalog is populated.
/// Initial catalog population (loading data, refreshing stats) must be
/// quiesced relative to serving. Once serving, the structured mutation
/// paths — ExecuteDdl (view CREATE/REFRESH) and ApplyDelta (base-table
/// deltas with view maintenance) — take the server's exclusive catalog
/// lock, while Prepare and Execute hold it shared, so DDL and deltas
/// interleave safely with running queries. Epoch bookkeeping is
/// per-object: a mutation invalidates exactly the cached plans whose
/// dependency stamps (tables scanned, views answered from) it touched;
/// unrelated plans survive and count toward `avoided_invalidations`.
class Server {
 public:
  explicit Server(ServerOptions options = ServerOptions::Default());
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The server's schema + data; populate before serving. Mutable access
  /// bumps the catalog's stats epoch (see Catalog::mutable_table).
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  const ServerOptions& options() const { return options_; }

  /// The catalog's current stats epoch (cache-invalidation stamp).
  int64_t stats_epoch() const { return catalog_.stats_epoch(); }

  /// Opens a client session. Thread-safe.
  ServerSession Connect();

  /// Materialized-view DDL and base-table deltas, exposed on the server
  /// itself for administrative callers; ServerSession forwards here. Both
  /// take the exclusive catalog lock.
  Result<std::string> ExecuteDdl(const std::string& text);
  Status ApplyDelta(const TableDelta& delta,
                    MaintenanceReport* report = nullptr);

  /// Plan-cache counters (hits, misses, evictions, invalidations).
  PlanCacheStats cache_stats() const { return cache_.stats(); }

  /// Admission counters (peak concurrency, total admissions).
  int admission_peak_running() const { return admission_.peak_running(); }
  int64_t admission_total() const { return admission_.total_admitted(); }

 private:
  friend class ServerSession;
  friend class ServerQuery;

  /// Cache-aware prepare: normalized text + config fingerprint key the
  /// cache; entries carry per-dependency epoch stamps checked on every
  /// lookup. A miss pays parse → bind → (view rewrite) → optimize and
  /// publishes the result for every other session. Takes the catalog lock
  /// shared.
  Result<std::shared_ptr<const OptimizedQuery>> Prepare(
      const std::string& text, bool* cache_hit);

  /// The dependency stamps of a freshly optimized plan: one "t:<id>" per
  /// scanned table (base tables and view backings alike), one "v:<name>"
  /// per view the rewriter answered from. Caller holds the catalog lock.
  std::vector<PlanDependency> CollectDependencies(
      const OptimizedQuery& optimized) const;

  /// The execution context queries of this server run under (threads, batch
  /// size, shared pool), without IO or stats sinks installed.
  ExecContext MakeContext();

  ServerOptions options_;
  /// Readers-writer lock between serving (Prepare/Execute, shared) and the
  /// structured catalog mutations (ExecuteDdl/ApplyDelta, exclusive).
  /// Acquired after admission so a queued writer never holds an execution
  /// slot hostage.
  mutable std::shared_mutex catalog_mu_;
  /// Cache-key suffix encoding every optimizer option that changes plan
  /// choice; computed once (options are immutable after construction).
  std::string config_fingerprint_;
  Catalog catalog_;
  PlanCache cache_;
  AdmissionController admission_;
  /// Created eagerly when threads > 1 so serving never races a lazy init.
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<int> next_session_id_{0};
  /// Lifetime token handed to sessions and queries; ~Server nulls the
  /// pointee so outstanding handles fail with a clear error instead of a
  /// use-after-free.
  std::shared_ptr<Server*> self_;
};

}  // namespace aggview

#endif  // AGGVIEW_SERVER_SERVER_H_
