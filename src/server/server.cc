#include "server/server.h"

#include <mutex>
#include <set>
#include <shared_mutex>

#include "analysis/dataflow.h"
#include "common/string_util.h"
#include "exec/thread_pool.h"
#include "obs/explain.h"
#include "obs/runtime_stats.h"
#include "optimizer/traditional.h"
#include "sql/binder.h"
#include "storage/io_accountant.h"
#include "view/matview.h"
#include "view/rewriter.h"

namespace aggview {

namespace {

/// RAII admission pass around one statement execution.
class AdmissionPass {
 public:
  explicit AdmissionPass(AdmissionController* admission)
      : admission_(admission) {
    admission_->Enter();
  }
  ~AdmissionPass() { admission_->Exit(); }

  AdmissionPass(const AdmissionPass&) = delete;
  AdmissionPass& operator=(const AdmissionPass&) = delete;

 private:
  AdmissionController* admission_;
};

/// Encodes every option that changes which plan the optimizer picks — plus
/// the execution backend, so a future compiled-artifact cache can never
/// serve one backend's entry to the other. Thread/batch knobs are
/// deliberately absent: they change throughput, never the plan.
std::string ConfigFingerprint(const ServerOptions& options) {
  const OptimizerOptions& opt = options.optimizer;
  return StrFormat(
      "trad=%d;mv=%d;prop=%d;pull=%d;shared=%d;shrink=%d;maxw=%d;inctrad=%d;"
      "greedy=%d;inv=%d;coal=%d;backend=%s",
      options.use_traditional ? 1 : 0,
      options.use_materialized_views ? 1 : 0,
      opt.propagate_predicates ? 1 : 0,
      opt.max_pullup, opt.require_shared_predicate ? 1 : 0,
      opt.shrink_views ? 1 : 0, opt.max_assignments,
      opt.include_traditional_alternative ? 1 : 0,
      opt.enumerator.greedy_aggregation ? 1 : 0,
      opt.enumerator.enable_invariant ? 1 : 0,
      opt.enumerator.enable_coalescing ? 1 : 0,
      ExecBackendName(options.backend));
}

}  // namespace

ServerOptions ServerOptions::Default() {
  ServerOptions options;
  ExecDefaults env = ExecDefaults::FromEnv();
  options.threads = env.threads;
  options.batch_size = env.batch_size;
  options.backend = env.backend;
  options.bytecode_verify = env.bytecode_verify;
  return options;
}

void AdmissionController::Enter() {
  MutexLock lock(&mu_);
  int64_t ticket = next_ticket_++;
  if (limit_ > 0) {
    // FIFO: ticket k runs once fewer than `limit_` of the tickets before it
    // are still in flight — i.e. strictly in arrival order.
    while (ticket >= finished_ + limit_) cv_.wait(lock);
  }
  ++admitted_;
  ++running_;
  if (running_ > peak_running_) peak_running_ = running_;
}

void AdmissionController::Exit() {
  {
    MutexLock lock(&mu_);
    --running_;
    ++finished_;
  }
  cv_.notify_all();
}

int AdmissionController::peak_running() const {
  MutexLock lock(&mu_);
  return peak_running_;
}

int64_t AdmissionController::total_admitted() const {
  MutexLock lock(&mu_);
  return admitted_;
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      config_fingerprint_(ConfigFingerprint(options_)),
      cache_(options_.plan_cache_capacity),
      admission_(options_.max_concurrent_queries),
      self_(std::make_shared<Server*>(this)) {
  if (options_.threads < 1) options_.threads = 1;
  if (options_.batch_size < 1) options_.batch_size = 1;
  // Eager pool creation: a lazily-built pool would need its own lock once
  // several sessions race to the first parallel query.
  if (options_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
}

Server::~Server() { *self_ = nullptr; }

ServerSession Server::Connect() {
  return ServerSession(self_,
                       next_session_id_.fetch_add(1, std::memory_order_relaxed)
                           + 1);
}

ExecContext Server::MakeContext() {
  ExecContext ctx;
  ctx.batch_size = options_.batch_size;
  ctx.threads = options_.threads;
  ctx.backend = options_.backend;
  ctx.bytecode_verify = options_.bytecode_verify;
  ctx.pool = pool_.get();
  return ctx;
}

std::vector<PlanDependency> Server::CollectDependencies(
    const OptimizedQuery& optimized) const {
  std::set<TableId> tables;
  for (int i = 0; i < optimized.query.num_range_vars(); ++i) {
    const RangeVar& rv = optimized.query.range_var(i);
    if (!rv.detached && rv.table >= 0) tables.insert(rv.table);
  }
  std::vector<PlanDependency> deps;
  deps.reserve(tables.size() + optimized.audit.view_rewrites.size());
  for (TableId t : tables) {
    deps.push_back({"t:" + std::to_string(t), catalog_.table_epoch(t)});
  }
  std::set<std::string> stamped_views;
  for (const ViewRewriteCertificate& cert : optimized.audit.view_rewrites) {
    const ViewDefinition* view = catalog_.FindView(cert.view_name);
    deps.push_back({"v:" + cert.view_name,
                    view != nullptr
                        ? view->epoch.load(std::memory_order_acquire)
                        : -1});
    stamped_views.insert(cert.view_name);
  }
  // Also stamp every view sharing a base table with the plan, answered-from
  // or not: a plan compiled while such a view was stale (or that the
  // rewriter declined) must be re-prepared once a REFRESH makes the view an
  // eligible answer source again — otherwise the cached base plan shadows
  // the view forever.
  for (const auto& view : catalog_.views()) {
    if (stamped_views.count(view->name) > 0) continue;
    bool relevant = false;
    for (TableId t : view->base_tables) relevant |= (tables.count(t) > 0);
    if (!relevant) continue;
    deps.push_back({"v:" + view->name,
                    view->epoch.load(std::memory_order_acquire)});
  }
  return deps;
}

Result<std::shared_ptr<const OptimizedQuery>> Server::Prepare(
    const std::string& text, bool* cache_hit) {
  *cache_hit = false;
  const std::string key = NormalizeSql(text) + '\x1f' + config_fingerprint_;
  std::shared_lock<std::shared_mutex> catalog_lock(catalog_mu_);
  // Read the epoch before optimizing: a concurrent mutation (blocked on the
  // exclusive lock until we finish) stamps the entry with the older epoch
  // and the next lookup invalidates it — never the reverse.
  const int64_t epoch = catalog_.stats_epoch();
  if (options_.plan_cache_capacity > 0) {
    DependencyResolver resolver = [this](const std::string& dep) -> int64_t {
      if (dep.size() > 2 && dep[1] == ':') {
        if (dep[0] == 't') {
          TableId id = static_cast<TableId>(std::atoll(dep.c_str() + 2));
          if (id < 0 || id >= catalog_.num_tables()) return -1;
          return catalog_.table_epoch(id);
        }
        if (dep[0] == 'v') {
          const ViewDefinition* view = catalog_.FindView(dep.substr(2));
          if (view == nullptr) return -1;
          return view->epoch.load(std::memory_order_acquire);
        }
      }
      return -1;
    };
    if (std::shared_ptr<const OptimizedQuery> hit =
            cache_.Lookup(key, epoch, resolver)) {
      *cache_hit = true;
      return hit;
    }
  }
  AGGVIEW_ASSIGN_OR_RETURN(Query query, ParseAndBind(catalog_, text));
  std::vector<ViewRewriteCertificate> view_certs;
  int view_rewrites = 0;
  if (options_.use_materialized_views && catalog_.num_views() > 0) {
    AGGVIEW_ASSIGN_OR_RETURN(
        view_rewrites,
        RewriteWithMaterializedViews(catalog_, &query, &view_certs));
  }
  OptimizedQuery optimized;
  if (options_.use_traditional) {
    AGGVIEW_ASSIGN_OR_RETURN(optimized, OptimizeTraditional(query));
  } else {
    AGGVIEW_ASSIGN_OR_RETURN(
        optimized, OptimizeQueryWithAggViews(query, options_.optimizer));
  }
  if (view_rewrites > 0) {
    for (ViewRewriteCertificate& cert : view_certs) {
      optimized.audit.view_rewrites.push_back(std::move(cert));
    }
    optimized.description =
        "answered " + std::to_string(view_rewrites) +
        " block(s) from materialized views; " + optimized.description;
    // Backing-column statistics can prove bounds the estimator's heuristics
    // miss; keep the plan's estimates inside them.
    optimized.plan = ClampEstimatesToProvableBounds(optimized.plan, optimized.query);
  }
  std::vector<PlanDependency> deps = CollectDependencies(optimized);
  auto shared =
      std::make_shared<const OptimizedQuery>(std::move(optimized));
  if (options_.plan_cache_capacity > 0) {
    cache_.Insert(key, epoch, shared, std::move(deps));
  }
  return shared;
}

Result<std::string> Server::ExecuteDdl(const std::string& text) {
  std::unique_lock<std::shared_mutex> catalog_lock(catalog_mu_);
  return ExecuteMatViewStatement(&catalog_, text, MakeContext());
}

Status Server::ApplyDelta(const TableDelta& delta, MaintenanceReport* report) {
  std::unique_lock<std::shared_mutex> catalog_lock(catalog_mu_);
  return ApplyTableDelta(&catalog_, delta, report);
}

Result<ServerQuery> ServerSession::Sql(const std::string& text) {
  if (server_ == nullptr) {
    return Status::InvalidArgument(
        "ServerSession is moved-from; use the session it was moved into");
  }
  Server* server = *server_;
  if (server == nullptr) {
    return Status::InvalidArgument(
        "ServerSession outlived its Server: the Server owning the catalog "
        "and worker pool has been destroyed");
  }
  bool cache_hit = false;
  AGGVIEW_ASSIGN_OR_RETURN(std::shared_ptr<const OptimizedQuery> optimized,
                           server->Prepare(text, &cache_hit));
  return ServerQuery(server_, std::move(optimized), cache_hit);
}

Result<std::string> ServerSession::ExecuteDdl(const std::string& text) {
  if (server_ == nullptr || *server_ == nullptr) {
    return Status::InvalidArgument(
        "ServerSession is moved-from or outlived its Server");
  }
  return (*server_)->ExecuteDdl(text);
}

Status ServerSession::ApplyDelta(const TableDelta& delta,
                                 MaintenanceReport* report) {
  if (server_ == nullptr || *server_ == nullptr) {
    return Status::InvalidArgument(
        "ServerSession is moved-from or outlived its Server");
  }
  return (*server_)->ApplyDelta(delta, report);
}

Result<Server*> ServerQuery::server() const {
  if (server_ == nullptr) {
    return Status::InvalidArgument(
        "ServerQuery is moved-from; execute the query it was moved into");
  }
  if (*server_ == nullptr) {
    return Status::InvalidArgument(
        "ServerQuery outlived its Server: the Server owning the catalog "
        "data and worker pool has been destroyed");
  }
  return *server_;
}

Result<QueryResult> ServerQuery::Execute() {
  AGGVIEW_ASSIGN_OR_RETURN(Server * server, this->server());
  AdmissionPass pass(&server->admission_);
  // Shared catalog lock after admission: a queued DDL/delta writer never
  // blocks behind a statement that is itself still waiting for a slot.
  std::shared_lock<std::shared_mutex> catalog_lock(server->catalog_mu_);
  IoAccountant io;
  AGGVIEW_ASSIGN_OR_RETURN(
      QueryResult result,
      ExecutePlan(optimized_->plan, optimized_->query,
                  server->MakeContext().WithIo(&io)));
  last_io_pages_ = io.total();
  return result;
}

std::string ServerQuery::Explain() const {
  std::string out = optimized_->description;
  if (!out.empty() && out.back() != '\n') out += "\n";
  out += PlanToString(optimized_->plan, optimized_->query);
  return out;
}

Result<std::string> ServerQuery::ExplainAnalyze() {
  AGGVIEW_ASSIGN_OR_RETURN(Server * server, this->server());
  AdmissionPass pass(&server->admission_);
  std::shared_lock<std::shared_mutex> catalog_lock(server->catalog_mu_);
  IoAccountant io;
  RuntimeStatsCollector stats;
  AGGVIEW_RETURN_NOT_OK(
      ExecutePlan(optimized_->plan, optimized_->query,
                  server->MakeContext().WithIo(&io).WithStats(&stats))
          .status());
  last_io_pages_ = io.total();
  return aggview::ExplainAnalyze(optimized_->plan, optimized_->query, stats);
}

}  // namespace aggview
