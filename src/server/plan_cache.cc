#include "server/plan_cache.h"

#include <cctype>

#include "common/string_util.h"

namespace aggview {

std::string PlanCacheStats::ToString() const {
  return StrFormat(
      "plan cache: %lld hits, %lld misses, %lld evictions, "
      "%lld invalidations (%lld avoided), %lld/%lld entries",
      static_cast<long long>(hits), static_cast<long long>(misses),
      static_cast<long long>(evictions), static_cast<long long>(invalidations),
      static_cast<long long>(avoided_invalidations),
      static_cast<long long>(size), static_cast<long long>(capacity));
}

std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_literal = false;
  bool pending_space = false;
  const size_t n = sql.size();
  for (size_t i = 0; i < n; ++i) {
    char c = sql[i];
    if (in_literal) {
      out.push_back(c);
      if (c == '\'') in_literal = false;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      // '--' line comment, mirroring the lexer: drop it but leave the
      // terminating newline for the whitespace collapse below, so the key
      // still separates the tokens the comment sat between.
      while (i + 1 < n && sql[i + 1] != '\n') ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      // Collapse the run; emit one space only if more text follows.
      if (!out.empty()) pending_space = true;
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    if (c == '\'') {
      in_literal = true;
      out.push_back(c);
      continue;
    }
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  // Drop a trailing semicolon (and any space the collapse left before it).
  while (!out.empty() && (out.back() == ';' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

PlanCache::PlanCache(int64_t capacity)
    : capacity_(capacity > 0 ? capacity : 0) {}

std::shared_ptr<const OptimizedQuery> PlanCache::Lookup(
    const std::string& key, int64_t epoch,
    const DependencyResolver& resolver) {
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  const Entry& entry = *it->second;
  bool fresh;
  if (resolver != nullptr && !entry.deps.empty()) {
    // Per-dependency freshness: the plan stays servable while every table
    // and view it reads is unchanged, however many unrelated objects moved.
    fresh = true;
    for (const PlanDependency& dep : entry.deps) {
      if (resolver(dep.name) != dep.epoch) {
        fresh = false;
        break;
      }
    }
    if (fresh && entry.epoch != epoch) ++avoided_invalidations_;
  } else {
    fresh = entry.epoch == epoch;
  }
  if (!fresh) {
    // Optimized under a catalog state that no longer exists: serve nothing,
    // drop the entry so the slot is reusable immediately.
    lru_.erase(it->second);
    index_.erase(it);
    ++invalidations_;
    ++misses_;
    return nullptr;
  }
  ++hits_;
  // Move to the front (most recently used) without invalidating iterators.
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key, int64_t epoch,
                       std::shared_ptr<const OptimizedQuery> plan,
                       std::vector<PlanDependency> deps) {
  if (capacity_ == 0) return;
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Replace in place (a concurrent session optimized the same statement).
    it->second->epoch = epoch;
    it->second->plan = std::move(plan);
    it->second->deps = std::move(deps);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (static_cast<int64_t>(lru_.size()) >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, epoch, std::move(plan), std::move(deps)});
  index_[key] = lru_.begin();
}

void PlanCache::Clear() {
  MutexLock lock(&mu_);
  lru_.clear();
  index_.clear();
}

PlanCacheStats PlanCache::stats() const {
  MutexLock lock(&mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.invalidations = invalidations_;
  s.avoided_invalidations = avoided_invalidations_;
  s.size = static_cast<int64_t>(lru_.size());
  s.capacity = capacity_;
  return s;
}

}  // namespace aggview
