#include "expr/scalar_expr.h"

#include <cassert>

namespace aggview {

ColId ScalarExpr::AsColumnRef() const {
  if (kind_ != Kind::kColumnRef) return kInvalidColId;
  return static_cast<const ColumnRefExpr*>(this)->id();
}

Value ColumnRefExpr::Eval(const Row& row, const RowLayout& layout) const {
  int idx = layout.IndexOf(id_);
  assert(idx >= 0 && "column not present in row layout");
  return row[static_cast<size_t>(idx)];
}

ExprPtr ColumnRefExpr::RemapColumns(
    const std::unordered_map<ColId, ColId>& mapping) const {
  auto it = mapping.find(id_);
  if (it == mapping.end()) return std::make_shared<ColumnRefExpr>(id_);
  return std::make_shared<ColumnRefExpr>(it->second);
}

ExprPtr LiteralExpr::RemapColumns(
    const std::unordered_map<ColId, ColId>&) const {
  return std::make_shared<LiteralExpr>(value_);
}

Value ArithExpr::Eval(const Row& row, const RowLayout& layout) const {
  Value l = lhs_->Eval(row, layout);
  Value r = rhs_->Eval(row, layout);
  if (l.is_null() || r.is_null()) return Value::Null();
  // Integer arithmetic stays integral except for division, which promotes to
  // double (SQL-ish, and what AVG-style ratios need).
  if (l.is_int() && r.is_int() && op_ != ArithOp::kDiv) {
    int64_t a = l.AsInt(), b = r.AsInt();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Int(a + b);
      case ArithOp::kSub:
        return Value::Int(a - b);
      case ArithOp::kMul:
        return Value::Int(a * b);
      case ArithOp::kDiv:
        break;
    }
  }
  double a = l.AsNumeric(), b = r.AsNumeric();
  switch (op_) {
    case ArithOp::kAdd:
      return Value::Real(a + b);
    case ArithOp::kSub:
      return Value::Real(a - b);
    case ArithOp::kMul:
      return Value::Real(a * b);
    case ArithOp::kDiv:
      return Value::Real(b == 0.0 ? 0.0 : a / b);
  }
  return Value::Real(0.0);
}

DataType ArithExpr::ResultType(const ColumnCatalog& cat) const {
  if (op_ == ArithOp::kDiv) return DataType::kDouble;
  DataType l = lhs_->ResultType(cat);
  DataType r = rhs_->ResultType(cat);
  if (l == DataType::kInt64 && r == DataType::kInt64) return DataType::kInt64;
  return DataType::kDouble;
}

std::string ArithExpr::ToString(const ColumnCatalog& cat) const {
  const char* op = "+";
  switch (op_) {
    case ArithOp::kAdd:
      op = "+";
      break;
    case ArithOp::kSub:
      op = "-";
      break;
    case ArithOp::kMul:
      op = "*";
      break;
    case ArithOp::kDiv:
      op = "/";
      break;
  }
  return "(" + lhs_->ToString(cat) + " " + op + " " + rhs_->ToString(cat) + ")";
}

ExprPtr ArithExpr::RemapColumns(
    const std::unordered_map<ColId, ColId>& mapping) const {
  return std::make_shared<ArithExpr>(op_, lhs_->RemapColumns(mapping),
                                     rhs_->RemapColumns(mapping));
}

ExprPtr Col(ColId id) { return std::make_shared<ColumnRefExpr>(id); }
ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr LitReal(double v) { return Lit(Value::Real(v)); }
ExprPtr LitStr(std::string v) { return Lit(Value::Str(std::move(v))); }
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<ArithExpr>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Coalesce(ExprPtr inner, ExprPtr fallback) {
  return std::make_shared<CoalesceExpr>(std::move(inner), std::move(fallback));
}

}  // namespace aggview
