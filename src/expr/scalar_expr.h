#ifndef AGGVIEW_EXPR_SCALAR_EXPR_H_
#define AGGVIEW_EXPR_SCALAR_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algebra/column.h"
#include "types/value.h"

namespace aggview {

class ScalarExpr;
using ExprPtr = std::shared_ptr<const ScalarExpr>;

/// Arithmetic operators supported inside scalar expressions.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

/// Immutable scalar expression tree: column references, literals, and
/// arithmetic over them. Predicates (`expr op expr`) live in predicate.h.
///
/// Expressions are shared (shared_ptr<const ...>) because transformations
/// copy predicate lists between operators without deep-copying trees.
class ScalarExpr {
 public:
  enum class Kind { kColumnRef, kLiteral, kArith, kCoalesce };

  virtual ~ScalarExpr() = default;

  Kind kind() const { return kind_; }

  /// Evaluates against `row` whose positions are described by `layout`.
  /// Referencing a column absent from the layout is a lowering bug and
  /// aborts in debug builds.
  virtual Value Eval(const Row& row, const RowLayout& layout) const = 0;

  /// Adds every referenced ColId to `out`.
  virtual void CollectColumns(std::set<ColId>* out) const = 0;

  /// Result type given the column catalog.
  virtual DataType ResultType(const ColumnCatalog& cat) const = 0;

  /// Pretty form using `cat` for column names.
  virtual std::string ToString(const ColumnCatalog& cat) const = 0;

  /// Structurally replaces column references according to `mapping`
  /// (old -> new). Ids absent from the mapping are left untouched.
  virtual ExprPtr RemapColumns(
      const std::unordered_map<ColId, ColId>& mapping) const = 0;

  /// Downcast helper: when this is a bare column reference, returns its id;
  /// otherwise kInvalidColId.
  ColId AsColumnRef() const;

 protected:
  explicit ScalarExpr(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

/// A reference to a query-global column.
class ColumnRefExpr final : public ScalarExpr {
 public:
  explicit ColumnRefExpr(ColId id) : ScalarExpr(Kind::kColumnRef), id_(id) {}

  ColId id() const { return id_; }

  Value Eval(const Row& row, const RowLayout& layout) const override;
  void CollectColumns(std::set<ColId>* out) const override { out->insert(id_); }
  DataType ResultType(const ColumnCatalog& cat) const override {
    return cat.type(id_);
  }
  std::string ToString(const ColumnCatalog& cat) const override {
    return cat.name(id_);
  }
  ExprPtr RemapColumns(
      const std::unordered_map<ColId, ColId>& mapping) const override;

 private:
  ColId id_;
};

/// A constant.
class LiteralExpr final : public ScalarExpr {
 public:
  explicit LiteralExpr(Value v) : ScalarExpr(Kind::kLiteral), value_(std::move(v)) {}

  const Value& value() const { return value_; }

  Value Eval(const Row&, const RowLayout&) const override { return value_; }
  void CollectColumns(std::set<ColId>*) const override {}
  DataType ResultType(const ColumnCatalog&) const override {
    return value_.type();
  }
  std::string ToString(const ColumnCatalog&) const override {
    return value_.ToString();
  }
  ExprPtr RemapColumns(
      const std::unordered_map<ColId, ColId>&) const override;

 private:
  Value value_;
};

/// Binary arithmetic over numeric operands.
class ArithExpr final : public ScalarExpr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : ScalarExpr(Kind::kArith),
        op_(op),
        lhs_(std::move(lhs)),
        rhs_(std::move(rhs)) {}

  ArithOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  Value Eval(const Row& row, const RowLayout& layout) const override;
  void CollectColumns(std::set<ColId>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }
  DataType ResultType(const ColumnCatalog& cat) const override;
  std::string ToString(const ColumnCatalog& cat) const override;
  ExprPtr RemapColumns(
      const std::unordered_map<ColId, ColId>& mapping) const override;

 private:
  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// COALESCE(inner, fallback): the inner expression unless it is NULL.
/// Exists for the outer-join extension — a flattened COUNT subquery reads
/// COALESCE(cnt, 0) over the outer join's padding rows.
class CoalesceExpr final : public ScalarExpr {
 public:
  CoalesceExpr(ExprPtr inner, ExprPtr fallback)
      : ScalarExpr(Kind::kCoalesce),
        inner_(std::move(inner)),
        fallback_(std::move(fallback)) {}

  const ExprPtr& inner() const { return inner_; }
  const ExprPtr& fallback() const { return fallback_; }

  Value Eval(const Row& row, const RowLayout& layout) const override {
    Value v = inner_->Eval(row, layout);
    return v.is_null() ? fallback_->Eval(row, layout) : v;
  }
  void CollectColumns(std::set<ColId>* out) const override {
    inner_->CollectColumns(out);
    fallback_->CollectColumns(out);
  }
  DataType ResultType(const ColumnCatalog& cat) const override {
    return inner_->ResultType(cat);
  }
  std::string ToString(const ColumnCatalog& cat) const override {
    return "coalesce(" + inner_->ToString(cat) + ", " +
           fallback_->ToString(cat) + ")";
  }
  ExprPtr RemapColumns(
      const std::unordered_map<ColId, ColId>& mapping) const override {
    return std::make_shared<CoalesceExpr>(inner_->RemapColumns(mapping),
                                          fallback_->RemapColumns(mapping));
  }

 private:
  ExprPtr inner_;
  ExprPtr fallback_;
};

/// Convenience constructors.
ExprPtr Col(ColId id);
ExprPtr Lit(Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitReal(double v);
ExprPtr LitStr(std::string v);
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Coalesce(ExprPtr inner, ExprPtr fallback);

}  // namespace aggview

#endif  // AGGVIEW_EXPR_SCALAR_EXPR_H_
