#include "expr/predicate.h"

namespace aggview {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

bool Predicate::Eval(const Row& row, const RowLayout& layout) const {
  Value l = lhs->Eval(row, layout);
  Value r = rhs->Eval(row, layout);
  // SQL semantics: comparisons with NULL are not true.
  if (l.is_null() || r.is_null()) return false;
  int c = l.Compare(r);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

std::set<ColId> Predicate::Columns() const {
  std::set<ColId> out;
  lhs->CollectColumns(&out);
  rhs->CollectColumns(&out);
  return out;
}

bool Predicate::BoundBy(const std::set<ColId>& available) const {
  for (ColId c : Columns()) {
    if (available.count(c) == 0) return false;
  }
  return true;
}

bool Predicate::References(const std::set<ColId>& cols) const {
  for (ColId c : Columns()) {
    if (cols.count(c) > 0) return true;
  }
  return false;
}

bool Predicate::AsColumnEquality(ColId* a, ColId* b) const {
  if (op != CompareOp::kEq) return false;
  ColId l = lhs->AsColumnRef();
  ColId r = rhs->AsColumnRef();
  if (l == kInvalidColId || r == kInvalidColId) return false;
  *a = l;
  *b = r;
  return true;
}

bool Predicate::AsColumnVsLiteral(ColId* col, CompareOp* effective_op,
                                  Value* value) const {
  ColId l = lhs->AsColumnRef();
  if (l != kInvalidColId && rhs->kind() == ScalarExpr::Kind::kLiteral) {
    *col = l;
    *effective_op = op;
    *value = static_cast<const LiteralExpr*>(rhs.get())->value();
    return true;
  }
  ColId r = rhs->AsColumnRef();
  if (r != kInvalidColId && lhs->kind() == ScalarExpr::Kind::kLiteral) {
    *col = r;
    *effective_op = FlipCompareOp(op);
    *value = static_cast<const LiteralExpr*>(lhs.get())->value();
    return true;
  }
  return false;
}

Predicate Predicate::RemapColumns(
    const std::unordered_map<ColId, ColId>& mapping) const {
  return Predicate(lhs->RemapColumns(mapping), op, rhs->RemapColumns(mapping));
}

std::string Predicate::ToString(const ColumnCatalog& cat) const {
  return lhs->ToString(cat) + " " + CompareOpSymbol(op) + " " +
         rhs->ToString(cat);
}

bool EvalConjunction(const std::vector<Predicate>& preds, const Row& row,
                     const RowLayout& layout) {
  for (const Predicate& p : preds) {
    if (!p.Eval(row, layout)) return false;
  }
  return true;
}

std::set<ColId> ConjunctionColumns(const std::vector<Predicate>& preds) {
  std::set<ColId> out;
  for (const Predicate& p : preds) {
    p.lhs->CollectColumns(&out);
    p.rhs->CollectColumns(&out);
  }
  return out;
}

Predicate Cmp(ExprPtr lhs, CompareOp op, ExprPtr rhs) {
  return Predicate(std::move(lhs), op, std::move(rhs));
}

Predicate EqCols(ColId a, ColId b) {
  return Predicate(Col(a), CompareOp::kEq, Col(b));
}

}  // namespace aggview
