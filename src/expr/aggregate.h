#ifndef AGGVIEW_EXPR_AGGREGATE_H_
#define AGGVIEW_EXPR_AGGREGATE_H_

#include <string>
#include <vector>

#include "algebra/column.h"
#include "common/result.h"
#include "types/value.h"

namespace aggview {

/// Aggregate functions. Besides the SQL built-ins, MEDIAN stands in for the
/// paper's "user-defined aggregate functions (without side-effects)" and is
/// deliberately *not* decomposable, which exercises the applicability gate of
/// simple coalescing grouping (Section 4.2).
///
/// kAvgFinal is the coalescing-combine form of AVG: it takes two inputs (a
/// partial SUM column and a partial COUNT column) and emits their ratio.
///
/// kCountSum is the coalescing-combine form of COUNT/COUNT(*): a SUM of
/// partial counts that keeps COUNT's empty-input semantics — a scalar
/// aggregate over zero rows yields 0, where a plain SUM would yield NULL.
/// (The differential fuzzer caught a plain-SUM combine turning a scalar
/// COUNT over an empty join into NULL.)
enum class AggKind {
  kCountStar,
  kCount,
  kSum,
  kMin,
  kMax,
  kAvg,
  kMedian,
  kAvgFinal,
  kCountSum,
};

const char* AggKindName(AggKind kind);

/// True when groups aggregated with `kind` can be computed from
/// sub-aggregates of a partition of the group (Section 4.2's "decomposable"
/// property): SUM/COUNT/MIN/MAX/AVG are; MEDIAN is not.
bool IsDecomposable(AggKind kind);

/// True when duplicating input rows never changes the result (MIN/MAX).
/// Duplicate-insensitive aggregates relax the applicability conditions of the
/// push-down transformations.
bool IsDuplicateInsensitive(AggKind kind);

/// One aggregate computation `output := kind(args)` inside a group-by
/// operator. COUNT(*) has no args; AVG-final has two (sum, count); everything
/// else has one.
struct AggregateCall {
  AggKind kind = AggKind::kCountStar;
  std::vector<ColId> args;
  ColId output = kInvalidColId;

  /// Result type given the argument types.
  DataType ResultType(const ColumnCatalog& cat) const;

  std::string ToString(const ColumnCatalog& cat) const;
};

/// Streaming accumulator for one aggregate over one group.
class AggAccumulator {
 public:
  explicit AggAccumulator(AggKind kind) : kind_(kind) {}

  /// Feeds the argument values of one input row (arity matches the call).
  void Add(const std::vector<Value>& args);

  /// Arity-explicit forms of Add, for callers (the compiled backend's fused
  /// aggregate kernel) that feed values straight from an input row without
  /// staging them in a vector: Add0 is COUNT(*)'s nullary form, Add1 the
  /// unary aggregates, Add2 AVG-final's (sum, count) pair. Add() dispatches
  /// here by arity, so the semantics have one definition.
  void Add0();
  void Add1(const Value& v);
  void Add2(const Value& a, const Value& b);

  /// Folds another accumulator of the same kind into this one, as if every
  /// row fed to `other` had been fed here. This is the execution-time
  /// counterpart of the coalescing combines (transform/coalescing): COUNT
  /// partials merge by summation with COUNT's empty-input-is-0 semantics
  /// (the AggKind::kCountSum rule), SUM/AVG partials by summation (exact on
  /// the all-integer path, so integer merges are order-independent), MIN/MAX
  /// by comparison. MEDIAN is not decomposable but is exactly mergeable by
  /// concatenating the kept samples. The parallel hash aggregate merges
  /// thread-local partial states with this.
  void Merge(const AggAccumulator& other);

  /// The aggregate value of everything fed so far. Empty groups cannot occur
  /// (a group exists only if at least one row was fed).
  Value Finish() const;

 private:
  AggKind kind_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  int64_t isum_ = 0;
  bool all_int_ = true;
  bool has_value_ = false;
  Value extreme_;                 // MIN/MAX running value
  std::vector<double> samples_;   // MEDIAN keeps its inputs
  double final_sum_ = 0.0;        // kAvgFinal numerator
  int64_t final_count_ = 0;       // kAvgFinal denominator
};

}  // namespace aggview

#endif  // AGGVIEW_EXPR_AGGREGATE_H_
