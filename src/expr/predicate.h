#ifndef AGGVIEW_EXPR_PREDICATE_H_
#define AGGVIEW_EXPR_PREDICATE_H_

#include <set>
#include <string>
#include <vector>

#include "expr/scalar_expr.h"

namespace aggview {

/// Comparison operators of the SQL subset.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpSymbol(CompareOp op);
/// The mirrored operator: a < b  <=>  b > a.
CompareOp FlipCompareOp(CompareOp op);

/// One conjunct: `lhs op rhs`. Queries in the paper's class are conjunctions
/// of comparisons ("cond1 and ... and condn"); conjunctions are represented
/// as std::vector<Predicate> throughout.
struct Predicate {
  ExprPtr lhs;
  CompareOp op = CompareOp::kEq;
  ExprPtr rhs;

  Predicate() = default;
  Predicate(ExprPtr lhs_in, CompareOp op_in, ExprPtr rhs_in)
      : lhs(std::move(lhs_in)), op(op_in), rhs(std::move(rhs_in)) {}

  /// Evaluates to a boolean over `row`.
  bool Eval(const Row& row, const RowLayout& layout) const;

  /// All ColIds referenced on either side.
  std::set<ColId> Columns() const;

  /// True when every referenced column is in `available`.
  bool BoundBy(const std::set<ColId>& available) const;

  /// True when at least one referenced column is in `cols`.
  bool References(const std::set<ColId>& cols) const;

  /// When this is a simple equijoin `colA = colB`, returns true and fills the
  /// two column ids (in expression order).
  bool AsColumnEquality(ColId* a, ColId* b) const;

  /// When this is `col op literal` (either orientation), returns true and
  /// fills `col`, the effective op as seen from the column side, and `value`.
  bool AsColumnVsLiteral(ColId* col, CompareOp* effective_op,
                         Value* value) const;

  /// Rewrites column references through `mapping`.
  Predicate RemapColumns(const std::unordered_map<ColId, ColId>& mapping) const;

  std::string ToString(const ColumnCatalog& cat) const;
};

/// Evaluates a conjunction; the empty conjunction is true.
bool EvalConjunction(const std::vector<Predicate>& preds, const Row& row,
                     const RowLayout& layout);

/// Union of column sets over a conjunction.
std::set<ColId> ConjunctionColumns(const std::vector<Predicate>& preds);

/// Convenience constructors.
Predicate Cmp(ExprPtr lhs, CompareOp op, ExprPtr rhs);
Predicate EqCols(ColId a, ColId b);

}  // namespace aggview

#endif  // AGGVIEW_EXPR_PREDICATE_H_
