#include "expr/aggregate.h"

#include <algorithm>
#include <cassert>

namespace aggview {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMedian:
      return "median";
    case AggKind::kAvgFinal:
      return "avg_final";
    case AggKind::kCountSum:
      return "count_sum";
  }
  return "?";
}

bool IsDecomposable(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
    case AggKind::kAvg:
    case AggKind::kAvgFinal:
    case AggKind::kCountSum:
      return true;
    case AggKind::kMedian:
      return false;
  }
  return false;
}

bool IsDuplicateInsensitive(AggKind kind) {
  return kind == AggKind::kMin || kind == AggKind::kMax;
}

DataType AggregateCall::ResultType(const ColumnCatalog& cat) const {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
    case AggKind::kCountSum:
      return DataType::kInt64;
    case AggKind::kAvg:
    case AggKind::kAvgFinal:
    case AggKind::kMedian:
      return DataType::kDouble;
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
      assert(!args.empty());
      return cat.type(args[0]);
  }
  return DataType::kDouble;
}

std::string AggregateCall::ToString(const ColumnCatalog& cat) const {
  if (kind == AggKind::kCountStar) return "count(*)";
  std::string inner;
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) inner += ", ";
    inner += cat.name(args[i]);
  }
  std::string name = AggKindName(kind);
  return name + "(" + inner + ")";
}

void AggAccumulator::Add(const std::vector<Value>& args) {
  switch (args.size()) {
    case 0:
      Add0();
      return;
    case 1:
      Add1(args[0]);
      return;
    default:
      assert(args.size() == 2);
      Add2(args[0], args[1]);
      return;
  }
}

void AggAccumulator::Add0() {
  // Only COUNT(*) is nullary: it counts rows regardless of values.
  assert(kind_ == AggKind::kCountStar);
  ++count_;
}

void AggAccumulator::Add1(const Value& v) {
  // SQL: aggregates (other than COUNT(*)) ignore NULL inputs.
  if (kind_ != AggKind::kCountStar && v.is_null()) return;
  switch (kind_) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      ++count_;
      return;
    case AggKind::kSum:
    case AggKind::kAvg:
    case AggKind::kCountSum: {
      ++count_;
      if (v.is_int() && all_int_) {
        isum_ += v.AsInt();
      } else {
        if (all_int_) {
          sum_ = static_cast<double>(isum_);
          all_int_ = false;
        }
        sum_ += v.AsNumeric();
      }
      return;
    }
    case AggKind::kMin: {
      if (!has_value_ || v < extreme_) extreme_ = v;
      has_value_ = true;
      return;
    }
    case AggKind::kMax: {
      if (!has_value_ || extreme_ < v) extreme_ = v;
      has_value_ = true;
      return;
    }
    case AggKind::kMedian: {
      samples_.push_back(v.AsNumeric());
      return;
    }
    case AggKind::kAvgFinal:
      assert(false && "AVG-final takes two arguments");
      return;
  }
}

void AggAccumulator::Add2(const Value& a, const Value& b) {
  assert(kind_ == AggKind::kAvgFinal);
  if (a.is_null() || b.is_null()) return;
  final_sum_ += a.AsNumeric();
  final_count_ += b.AsInt();
}

void AggAccumulator::Merge(const AggAccumulator& other) {
  assert(kind_ == other.kind_);
  switch (kind_) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      count_ += other.count_;
      return;
    case AggKind::kSum:
    case AggKind::kAvg:
    case AggKind::kCountSum: {
      count_ += other.count_;
      if (all_int_ && other.all_int_) {
        isum_ += other.isum_;
      } else {
        double theirs =
            other.all_int_ ? static_cast<double>(other.isum_) : other.sum_;
        if (all_int_) {
          sum_ = static_cast<double>(isum_);
          all_int_ = false;
        }
        sum_ += theirs;
      }
      return;
    }
    case AggKind::kMin:
      if (other.has_value_ && (!has_value_ || other.extreme_ < extreme_)) {
        extreme_ = other.extreme_;
        has_value_ = true;
      }
      return;
    case AggKind::kMax:
      if (other.has_value_ && (!has_value_ || extreme_ < other.extreme_)) {
        extreme_ = other.extreme_;
        has_value_ = true;
      }
      return;
    case AggKind::kMedian:
      samples_.insert(samples_.end(), other.samples_.begin(),
                      other.samples_.end());
      return;
    case AggKind::kAvgFinal:
      final_sum_ += other.final_sum_;
      final_count_ += other.final_count_;
      return;
  }
}

Value AggAccumulator::Finish() const {
  // SQL: every aggregate except COUNT yields NULL when no (non-NULL) input
  // was fed — the scalar-aggregate-over-empty-input case and groups whose
  // argument column was entirely NULL (outer-join padding).
  switch (kind_) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return Value::Int(count_);
    case AggKind::kSum:
      if (count_ == 0) return Value::Null();
      return all_int_ ? Value::Int(isum_) : Value::Real(sum_);
    case AggKind::kCountSum:
      // Combine of partial counts: empty input is a count of 0, not NULL.
      return all_int_ ? Value::Int(isum_) : Value::Real(sum_);
    case AggKind::kAvg: {
      if (count_ == 0) return Value::Null();
      double total = all_int_ ? static_cast<double>(isum_) : sum_;
      return Value::Real(total / static_cast<double>(count_));
    }
    case AggKind::kMin:
    case AggKind::kMax:
      if (!has_value_) return Value::Null();
      return extreme_;
    case AggKind::kMedian: {
      if (samples_.empty()) return Value::Null();
      std::vector<double> s = samples_;
      std::sort(s.begin(), s.end());
      size_t n = s.size();
      double m = (n % 2 == 1) ? s[n / 2] : 0.5 * (s[n / 2 - 1] + s[n / 2]);
      return Value::Real(m);
    }
    case AggKind::kAvgFinal:
      if (final_count_ == 0) return Value::Null();
      return Value::Real(final_sum_ / static_cast<double>(final_count_));
  }
  return Value::Real(0.0);
}

}  // namespace aggview
