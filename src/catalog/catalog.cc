#include "catalog/catalog.h"

#include <algorithm>
#include <set>

namespace aggview {

namespace {

bool IsSubset(const std::vector<int>& key, const std::vector<int>& columns) {
  for (int k : key) {
    if (std::find(columns.begin(), columns.end(), k) == columns.end()) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool TableDef::CoversKey(const std::vector<int>& columns) const {
  if (!primary_key.empty() && IsSubset(primary_key, columns)) return true;
  for (const auto& uk : unique_keys) {
    if (!uk.empty() && IsSubset(uk, columns)) return true;
  }
  return false;
}

Result<TableId> Catalog::AddTable(TableDef def) {
  for (const auto& t : tables_) {
    if (t->name == def.name) {
      return Status::AlreadyExists("table '" + def.name + "' already exists");
    }
  }
  for (int c : def.primary_key) {
    if (c < 0 || c >= def.schema.num_columns()) {
      return Status::InvalidArgument("primary key column index out of range in '" +
                                     def.name + "'");
    }
  }
  for (const auto& uk : def.unique_keys) {
    for (int c : uk) {
      if (c < 0 || c >= def.schema.num_columns()) {
        return Status::InvalidArgument(
            "unique key column index out of range in '" + def.name + "'");
      }
    }
  }
  TableId id = static_cast<TableId>(tables_.size());
  def.id = id;
  tables_.push_back(std::make_unique<TableDef>(std::move(def)));
  table_epochs_.emplace_back(0);
  BumpStatsEpoch();
  return id;
}

Status Catalog::AddForeignKey(ForeignKey fk) {
  if (fk.referencing_table < 0 || fk.referencing_table >= num_tables() ||
      fk.referenced_table < 0 || fk.referenced_table >= num_tables()) {
    return Status::InvalidArgument("foreign key references unknown table");
  }
  if (fk.referencing_columns.size() != fk.referenced_columns.size() ||
      fk.referencing_columns.empty()) {
    return Status::InvalidArgument("foreign key column lists must match and be non-empty");
  }
  const TableDef& target = table(fk.referenced_table);
  std::vector<int> cols = fk.referenced_columns;
  if (!target.CoversKey(cols)) {
    return Status::InvalidArgument("foreign key must reference a key of '" +
                                   target.name + "'");
  }
  foreign_keys_.push_back(std::move(fk));
  BumpStatsEpoch();
  return Status::OK();
}

Result<TableId> Catalog::FindTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t->name == name) return t->id;
  }
  return Status::NotFound("no table named '" + name + "'");
}

Status Catalog::AddView(std::unique_ptr<ViewDefinition> view) {
  if (view == nullptr || view->name.empty()) {
    return Status::InvalidArgument("materialized view needs a name");
  }
  if (FindView(view->name) != nullptr) {
    return Status::AlreadyExists("materialized view '" + view->name +
                                 "' already exists");
  }
  if (FindTable(view->name).ok()) {
    return Status::AlreadyExists("materialized view '" + view->name +
                                 "' shadows a base table");
  }
  views_.push_back(std::move(view));
  return Status::OK();
}

const ViewDefinition* Catalog::FindView(const std::string& name) const {
  for (const auto& v : views_) {
    if (v->name == name) return v.get();
  }
  return nullptr;
}

ViewDefinition* Catalog::FindMutableView(const std::string& name) {
  for (const auto& v : views_) {
    if (v->name == name) return v.get();
  }
  return nullptr;
}

Status Catalog::DropView(const std::string& name) {
  for (auto it = views_.begin(); it != views_.end(); ++it) {
    if ((*it)->name != name) continue;
    TableId backing = (*it)->backing_table;
    views_.erase(it);
    if (backing >= 0 && backing < num_tables()) {
      // Free the backing rows; the positional TableDef slot stays. The
      // epoch bump invalidates any cached plan that scanned the view.
      mutable_table(backing).data.reset();
    }
    return Status::OK();
  }
  return Status::NotFound("no materialized view named '" + name + "'");
}

bool Catalog::IsViewFresh(const ViewDefinition& view) const {
  for (const auto& [base, epoch] : view.synced_base_epochs) {
    if (table_epoch(base) != epoch) return false;
  }
  return !view.synced_base_epochs.empty() || view.base_tables.empty();
}

bool Catalog::IsForeignKeyJoin(TableId referencing,
                               const std::vector<int>& referencing_cols,
                               TableId referenced,
                               const std::vector<int>& referenced_cols) const {
  if (referencing_cols.size() != referenced_cols.size()) return false;
  for (const ForeignKey& fk : foreign_keys_) {
    if (fk.referencing_table != referencing || fk.referenced_table != referenced) {
      continue;
    }
    if (fk.referencing_columns.size() != referencing_cols.size()) continue;
    // The join must pair exactly the FK columns with the corresponding key
    // columns (in any order of the pair list).
    std::set<std::pair<int, int>> declared;
    for (size_t i = 0; i < fk.referencing_columns.size(); ++i) {
      declared.insert({fk.referencing_columns[i], fk.referenced_columns[i]});
    }
    std::set<std::pair<int, int>> actual;
    for (size_t i = 0; i < referencing_cols.size(); ++i) {
      actual.insert({referencing_cols[i], referenced_cols[i]});
    }
    if (declared == actual) return true;
  }
  return false;
}

}  // namespace aggview
