#include "catalog/statistics.h"

#include <algorithm>
#include <unordered_set>

#include "storage/table.h"

namespace aggview {

double Histogram::FractionBelow(double x) const {
  if (bounds.empty()) return 0.0;
  if (x <= min) return 0.0;
  if (x > bounds.back()) return 1.0;
  double per_bucket = 1.0 / static_cast<double>(bounds.size());
  double lo = min;
  for (size_t i = 0; i < bounds.size(); ++i) {
    double hi = bounds[i];
    if (x <= hi) {
      double within =
          hi > lo ? (x - lo) / (hi - lo) : 1.0;  // point bucket: all below
      return per_bucket * (static_cast<double>(i) + within);
    }
    lo = hi;
  }
  return 1.0;
}

TableStats ComputeStats(const Table& table) {
  TableStats stats;
  stats.row_count = table.row_count();
  const Schema& schema = table.schema();
  stats.columns.resize(static_cast<size_t>(schema.num_columns()));

  for (int c = 0; c < schema.num_columns(); ++c) {
    ColumnStats& cs = stats.columns[static_cast<size_t>(c)];
    std::unordered_set<size_t> seen;
    bool first = true;
    bool first_str = true;
    bool numeric = IsNumeric(schema.column(c).type);
    std::vector<double> values;
    if (numeric) values.reserve(static_cast<size_t>(table.row_count()));
    for (const Row& row : table.rows()) {
      const Value& v = row[static_cast<size_t>(c)];
      seen.insert(v.Hash());
      // NULLs count toward distinct (one bucket) but contribute no range or
      // histogram mass.
      if (v.is_null()) {
        ++cs.null_count;
        continue;
      }
      if (v.is_string()) {
        const std::string& s = v.AsString();
        if (first_str) {
          cs.min_str = cs.max_str = s;
          first_str = false;
        } else {
          if (s < cs.min_str) cs.min_str = s;
          if (s > cs.max_str) cs.max_str = s;
        }
      }
      if (numeric) {
        double d = v.AsNumeric();
        values.push_back(d);
        if (first) {
          cs.min = cs.max = d;
          first = false;
        } else {
          if (d < cs.min) cs.min = d;
          if (d > cs.max) cs.max = d;
        }
      }
    }
    cs.distinct = static_cast<int64_t>(seen.size());
    if (cs.distinct == 0) cs.distinct = 1;
    cs.has_range = numeric && !first;
    cs.has_str_range = !first_str;

    // Equi-depth histogram: bucket edges at the N-quantiles.
    if (cs.has_range && values.size() >= 2) {
      std::sort(values.begin(), values.end());
      cs.histogram.min = values.front();
      int buckets = static_cast<int>(
          std::min<size_t>(kHistogramBuckets, values.size()));
      for (int b = 1; b <= buckets; ++b) {
        size_t idx = values.size() * static_cast<size_t>(b) /
                         static_cast<size_t>(buckets) -
                     1;
        cs.histogram.bounds.push_back(values[idx]);
      }
      // Edges must be non-decreasing and end at the max by construction.
      cs.histogram.bounds.back() = values.back();
    }
  }
  return stats;
}

}  // namespace aggview
