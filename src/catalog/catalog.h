#ifndef AGGVIEW_CATALOG_CATALOG_H_
#define AGGVIEW_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/statistics.h"
#include "common/result.h"
#include "common/status.h"
#include "expr/aggregate.h"
#include "types/schema.h"

namespace aggview {

class Table;

/// Identifies a table in the catalog.
using TableId = int32_t;

/// A declared foreign-key relationship: columns of the referencing table
/// point at a key of the referenced table. The pull-up transformation uses
/// this to elide the referenced table's key from the grouping columns
/// (Section 3, "In case the join J1 is a foreign key join...").
struct ForeignKey {
  TableId referencing_table = -1;
  std::vector<int> referencing_columns;
  TableId referenced_table = -1;
  std::vector<int> referenced_columns;  // must form a key of referenced_table
};

/// Definition of a base table: schema, keys, statistics, and (optionally) the
/// in-memory data.
struct TableDef {
  TableId id = -1;
  std::string name;
  Schema schema;
  /// Primary key: column indices. Every table has one (the paper notes a
  /// query engine may fall back to internal tuple ids; we require declared
  /// keys in the catalog and the storage layer can synthesize a rowid key).
  std::vector<int> primary_key;
  /// Additional unique keys.
  std::vector<std::vector<int>> unique_keys;
  TableStats stats;
  /// Populated when data is loaded; optimization-only catalogs may leave this
  /// null and provide stats directly.
  std::shared_ptr<Table> data;

  /// True when `columns` (table-local indices, any order) is a superset of
  /// the primary key or of some unique key.
  bool CoversKey(const std::vector<int>& columns) const;
};

/// One aggregate slot of a materialized view: how the definition aggregate
/// is stored as partials in the backing table and recombined at query time.
/// The split/merge rules come from transform/decompose.h — the same table
/// coalescing uses — so maintenance and roll-up provably agree with the
/// optimizer's algebra.
struct ViewAggSlot {
  /// The definition's aggregate (a user kind: SUM/COUNT/COUNT(*)/MIN/MAX/AVG;
  /// MEDIAN is rejected at CREATE).
  AggKind kind = AggKind::kCountStar;
  /// Compensating combine applied when answering a query from the view
  /// (DecomposeAggregate(kind).combine).
  AggKind combine = AggKind::kCountSum;
  /// Definition-block relation the argument comes from (position in the
  /// definition's FROM list) and the argument's table-local column index;
  /// both -1 for COUNT(*).
  int arg_rel = -1;
  int arg_col = -1;
  /// Backing-table columns feeding the combine, in argument order (one for
  /// SUM/COUNT/MIN/MAX, [psum, pcount] for AVG).
  std::vector<int> storage;
  /// Backing-table column holding the count of non-NULL argument values of
  /// the group — the retraction witness delta maintenance needs to restore
  /// SUM/AVG to NULL when the last non-NULL argument leaves a group. -1 for
  /// MIN/MAX (delete falls back to group recompute).
  int nn_count = -1;
  /// Definition-space rendering ("avg(e.sal)") for diagnostics.
  std::string display;
};

/// A materialized aggregate view: its definition (kept as SQL and re-bound on
/// demand, so the catalog does not depend on the parser), the backing table
/// holding one row per group (grouping keys first, then partial-aggregate
/// slots, then a hidden row count), and the freshness bookkeeping the plan
/// cache and the rewriter key on.
struct ViewDefinition {
  std::string name;
  /// The definition SELECT text (everything after AS).
  std::string definition_sql;
  /// User-visible output column names, positional with the SELECT items.
  std::vector<std::string> column_names;
  /// Backing table registered in the catalog ("__mv_<name>__<n>"); its
  /// primary key is exactly the grouping prefix.
  TableId backing_table = -1;
  /// Catalog table of each definition FROM entry, in FROM order.
  std::vector<TableId> base_tables;
  /// Backing columns [0, num_grouping) are the grouping keys, in definition
  /// GROUP BY order; per key the definition relation and table-local column.
  int num_grouping = 0;
  std::vector<int> grouping_rel;
  std::vector<int> grouping_col;
  /// One slot per definition aggregate, in definition order.
  std::vector<ViewAggSlot> slots;
  /// Backing partial columns [num_grouping, ...), positionally: the
  /// partial-aggregate kind and argument stored there (definition FROM
  /// position + table-local column; both -1 for the COUNT(*) partial).
  /// Slots reference these by backing column index; shared partials (AVG
  /// and SUM over the same argument) appear once. Delta maintenance merges
  /// and retracts at this level.
  struct Partial {
    AggKind kind = AggKind::kCountStar;
    int arg_rel = -1;
    int arg_col = -1;
  };
  std::vector<Partial> partials;
  /// Backing column of the hidden COUNT(*) ("__rows"): detects a delta
  /// emptying a group. Always present, shared with a COUNT(*) slot if any.
  int rows_col = -1;
  /// Whether the view is scalar (no GROUP BY): the backing table then always
  /// holds exactly one row, kept (with empty-aggregate values) even when the
  /// base goes empty — the PR 1 scalar-aggregate semantics.
  bool scalar = false;
  /// Single-relation views are delta-maintainable; multi-relation views go
  /// stale on base change and need REFRESH.
  bool incremental = false;
  /// Bumped on every content change (materialize, refresh, delta apply);
  /// view-backed cached plans stamp it.
  std::atomic<int64_t> epoch{0};
  /// Per distinct base table: the table's epoch the content was computed
  /// from. The view is fresh iff every entry matches the table's current
  /// epoch.
  std::vector<std::pair<TableId, int64_t>> synced_base_epochs;
};

/// The schema registry: tables, keys, foreign keys, materialized views.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table; assigns and returns its id. Fails on duplicate name
  /// or a primary key referencing nonexistent columns.
  Result<TableId> AddTable(TableDef def);

  /// Declares a foreign key. Fails unless the referenced columns form a key.
  Status AddForeignKey(ForeignKey fk);

  const TableDef& table(TableId id) const {
    return *tables_[static_cast<size_t>(id)];
  }
  /// Mutable access to a table definition (schema evolution, stats refresh,
  /// data (re)load). Any mutable access is presumed to mutate and bumps both
  /// the global stats epoch and the table's own epoch. Plans cached against
  /// the old catalog state that touch this table are invalidated; plans over
  /// other tables survive via their per-table dependency stamps (the plan
  /// cache counts those as avoided invalidations). Read-only callers (the
  /// whole serve path: binder, optimizer, executor) must use the const
  /// table() overload instead; steady-state serving never bumps the epoch
  /// (asserted in server_test).
  TableDef& mutable_table(TableId id) {
    BumpTableEpoch(id);
    return *tables_[static_cast<size_t>(id)];
  }
  int num_tables() const { return static_cast<int>(tables_.size()); }

  /// Monotonic version of the catalog's schema, statistics and data.
  /// Starts at 0 and is bumped by AddTable, AddForeignKey, every
  /// mutable_table access, and explicit BumpStatsEpoch calls. A plan cache
  /// stamps each entry with the epoch it was optimized under and treats a
  /// mismatch as invalidation. Reads are safe concurrent with query serving;
  /// mutations themselves must be quiesced relative to running queries.
  int64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_acquire);
  }

  /// Declares "something this catalog describes changed" without going
  /// through a mutator (e.g. rows appended through a Table pointer obtained
  /// earlier).
  void BumpStatsEpoch() {
    stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Monotonic version of one table's schema/statistics/data. Starts at 0;
  /// bumped by mutable_table and BumpTableEpoch. Cached plans stamp the
  /// epoch of every table they scan, so a mutation invalidates exactly the
  /// plans that touched the mutated table.
  int64_t table_epoch(TableId id) const {
    return table_epochs_[static_cast<size_t>(id)].load(
        std::memory_order_acquire);
  }

  /// Bumps one table's epoch (and the global stats epoch, which remains the
  /// conservative summary "something changed").
  void BumpTableEpoch(TableId id) {
    table_epochs_[static_cast<size_t>(id)].fetch_add(1,
                                                     std::memory_order_acq_rel);
    BumpStatsEpoch();
  }

  Result<TableId> FindTable(const std::string& name) const;

  // --- Materialized views -------------------------------------------------

  /// Registers a materialized view (created via view/matview.h, which also
  /// builds and fills the backing table). Fails on a duplicate name or a
  /// name colliding with a base table.
  Status AddView(std::unique_ptr<ViewDefinition> view);

  /// The view named `name`, or null. The mutable overload is for the
  /// maintenance engine only; it does not bump any epoch by itself.
  const ViewDefinition* FindView(const std::string& name) const;
  ViewDefinition* FindMutableView(const std::string& name);

  /// Drops the view and frees its backing data (the backing TableDef slot
  /// stays allocated — TableIds are positional — but holds no rows).
  Status DropView(const std::string& name);

  int num_views() const { return static_cast<int>(views_.size()); }
  const std::vector<std::unique_ptr<ViewDefinition>>& views() const {
    return views_;
  }

  /// True when every base table's current epoch matches the view's synced
  /// snapshot — i.e. the backing content reflects the current base data.
  bool IsViewFresh(const ViewDefinition& view) const;

  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// True when a declared FK maps `referencing_cols` of `referencing` exactly
  /// onto a key of `referenced` (order-insensitive pairing of (ref_col,
  /// key_col) pairs).
  bool IsForeignKeyJoin(TableId referencing,
                        const std::vector<int>& referencing_cols,
                        TableId referenced,
                        const std::vector<int>& referenced_cols) const;

 private:
  std::vector<std::unique_ptr<TableDef>> tables_;
  std::vector<ForeignKey> foreign_keys_;
  std::vector<std::unique_ptr<ViewDefinition>> views_;
  // Atomic so serving-layer epoch reads need no lock; see stats_epoch().
  std::atomic<int64_t> stats_epoch_{0};
  // One epoch per table, same index as tables_. A deque because atomics are
  // immovable and table registration must not relocate live entries.
  std::deque<std::atomic<int64_t>> table_epochs_;
};

}  // namespace aggview

#endif  // AGGVIEW_CATALOG_CATALOG_H_
