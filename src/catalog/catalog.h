#ifndef AGGVIEW_CATALOG_CATALOG_H_
#define AGGVIEW_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/statistics.h"
#include "common/result.h"
#include "common/status.h"
#include "types/schema.h"

namespace aggview {

class Table;

/// Identifies a table in the catalog.
using TableId = int32_t;

/// A declared foreign-key relationship: columns of the referencing table
/// point at a key of the referenced table. The pull-up transformation uses
/// this to elide the referenced table's key from the grouping columns
/// (Section 3, "In case the join J1 is a foreign key join...").
struct ForeignKey {
  TableId referencing_table = -1;
  std::vector<int> referencing_columns;
  TableId referenced_table = -1;
  std::vector<int> referenced_columns;  // must form a key of referenced_table
};

/// Definition of a base table: schema, keys, statistics, and (optionally) the
/// in-memory data.
struct TableDef {
  TableId id = -1;
  std::string name;
  Schema schema;
  /// Primary key: column indices. Every table has one (the paper notes a
  /// query engine may fall back to internal tuple ids; we require declared
  /// keys in the catalog and the storage layer can synthesize a rowid key).
  std::vector<int> primary_key;
  /// Additional unique keys.
  std::vector<std::vector<int>> unique_keys;
  TableStats stats;
  /// Populated when data is loaded; optimization-only catalogs may leave this
  /// null and provide stats directly.
  std::shared_ptr<Table> data;

  /// True when `columns` (table-local indices, any order) is a superset of
  /// the primary key or of some unique key.
  bool CoversKey(const std::vector<int>& columns) const;
};

/// The schema registry: tables, keys, foreign keys.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table; assigns and returns its id. Fails on duplicate name
  /// or a primary key referencing nonexistent columns.
  Result<TableId> AddTable(TableDef def);

  /// Declares a foreign key. Fails unless the referenced columns form a key.
  Status AddForeignKey(ForeignKey fk);

  const TableDef& table(TableId id) const {
    return *tables_[static_cast<size_t>(id)];
  }
  /// Mutable access to a table definition (schema evolution, stats refresh,
  /// data (re)load). Any mutable access is presumed to mutate and bumps the
  /// stats epoch, so plans cached against the old catalog state are
  /// invalidated conservatively — every call costs the serving layer its
  /// entire plan cache. Read-only callers (the whole serve path: binder,
  /// optimizer, executor) must use the const table() overload instead;
  /// steady-state serving never bumps the epoch (asserted in server_test).
  TableDef& mutable_table(TableId id) {
    BumpStatsEpoch();
    return *tables_[static_cast<size_t>(id)];
  }
  int num_tables() const { return static_cast<int>(tables_.size()); }

  /// Monotonic version of the catalog's schema, statistics and data.
  /// Starts at 0 and is bumped by AddTable, AddForeignKey, every
  /// mutable_table access, and explicit BumpStatsEpoch calls. A plan cache
  /// stamps each entry with the epoch it was optimized under and treats a
  /// mismatch as invalidation. Reads are safe concurrent with query serving;
  /// mutations themselves must be quiesced relative to running queries.
  int64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_acquire);
  }

  /// Declares "something this catalog describes changed" without going
  /// through a mutator (e.g. rows appended through a Table pointer obtained
  /// earlier).
  void BumpStatsEpoch() {
    stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  Result<TableId> FindTable(const std::string& name) const;

  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// True when a declared FK maps `referencing_cols` of `referencing` exactly
  /// onto a key of `referenced` (order-insensitive pairing of (ref_col,
  /// key_col) pairs).
  bool IsForeignKeyJoin(TableId referencing,
                        const std::vector<int>& referencing_cols,
                        TableId referenced,
                        const std::vector<int>& referenced_cols) const;

 private:
  std::vector<std::unique_ptr<TableDef>> tables_;
  std::vector<ForeignKey> foreign_keys_;
  // Atomic so serving-layer epoch reads need no lock; see stats_epoch().
  std::atomic<int64_t> stats_epoch_{0};
};

}  // namespace aggview

#endif  // AGGVIEW_CATALOG_CATALOG_H_
