#ifndef AGGVIEW_CATALOG_STATISTICS_H_
#define AGGVIEW_CATALOG_STATISTICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aggview {

class Table;

/// Equi-depth histogram over a numeric column: `bounds` holds the bucket
/// upper edges (ascending, last == column max); each bucket holds ~1/N of
/// the rows. Gives range-predicate estimates that survive skewed and
/// multi-modal distributions where the uniform min/max interpolation fails.
struct Histogram {
  double min = 0.0;
  std::vector<double> bounds;

  bool empty() const { return bounds.empty(); }

  /// Estimated fraction of rows with value < x (strict); values within a
  /// bucket interpolate linearly.
  double FractionBelow(double x) const;
};

/// Per-column statistics used by the cardinality estimator.
struct ColumnStats {
  /// Number of distinct values in the column.
  int64_t distinct = 1;
  /// Numeric min/max (meaningful for INT64/DOUBLE columns; ignored for
  /// strings, whose range predicates get the default selectivity).
  double min = 0.0;
  double max = 0.0;
  bool has_range = false;
  /// Lexicographic min/max over the non-NULL values of a string column, so
  /// interval domains exist for strings too (the estimator still uses the
  /// default selectivity for string ranges; these feed the dataflow
  /// analyzer's value domains).
  std::string min_str;
  std::string max_str;
  bool has_str_range = false;
  /// Exact number of NULLs in the column (NULLs count toward `distinct` as
  /// one bucket but contribute nothing to any range). Seeds the dataflow
  /// analyzer's nullability lattice: 0 proves a scanned column never-NULL.
  int64_t null_count = 0;
  /// Equi-depth histogram (numeric columns with enough rows).
  Histogram histogram;
};

/// Table-level statistics: row count plus per-column stats, positionally
/// aligned with the table schema.
struct TableStats {
  int64_t row_count = 0;
  std::vector<ColumnStats> columns;
};

/// Number of equi-depth buckets built per numeric column.
inline constexpr int kHistogramBuckets = 32;

/// Scans `table` and computes exact statistics (the paper assumes the
/// optimizer has statistics; we make them exact so that estimation error is a
/// controlled, explainable quantity in the experiments).
TableStats ComputeStats(const Table& table);

}  // namespace aggview

#endif  // AGGVIEW_CATALOG_STATISTICS_H_
