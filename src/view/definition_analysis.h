#ifndef AGGVIEW_VIEW_DEFINITION_ANALYSIS_H_
#define AGGVIEW_VIEW_DEFINITION_ANALYSIS_H_

#include <string>
#include <vector>

#include "algebra/query.h"
#include "catalog/catalog.h"
#include "common/result.h"

namespace aggview {

/// The bound and analyzed form of a materialized-view definition. Produced
/// from the stored definition SQL each time it is needed — by CREATE and
/// REFRESH (to execute the partial form), by the view-matching rewriter (to
/// compare the definition's blocks and predicates against a candidate
/// query), and by the certificate verifier (to re-derive the rewriter's
/// claims independently).
struct DefAnalysis {
  /// The definition bound as a top-level aggregate query against the base
  /// tables, then mutated into *partial* form: top_group_by's aggregates are
  /// the deduplicated partial calls and select_list is `content_cols`. The
  /// definition's FROM rels (base_rels), WHERE (predicates) and grouping are
  /// untouched, so matching code reads them directly.
  Query query;
  /// The definition's original aggregate calls (before the partial
  /// mutation), positionally aligned with `slots`.
  std::vector<AggregateCall> def_aggregates;
  /// Resolved output name per definition select item.
  std::vector<std::string> out_names;
  /// ColId per definition select item (grouping columns and original
  /// aggregate outputs), positionally aligned with `out_names`.
  std::vector<ColId> item_cols;
  /// Catalog table per definition FROM entry, in FROM order.
  std::vector<TableId> base_tables;
  bool scalar = false;
  int num_grouping = 0;
  /// Definition-space grouping ColIds, in GROUP BY order; per key the FROM
  /// position and table-local column it came from.
  std::vector<ColId> grouping_ids;
  std::vector<int> grouping_rel;
  std::vector<int> grouping_col;
  std::vector<ViewAggSlot> slots;
  std::vector<ViewDefinition::Partial> partials;
  /// Backing column of the hidden COUNT(*) partial.
  int rows_col = -1;
  /// Backing-table schema: grouping keys, then partial columns.
  Schema backing_schema;
  /// Definition-space ColIds in backing-column order (grouping ids followed
  /// by partial outputs) — the select list of the partial-form `query`.
  std::vector<ColId> content_cols;
};

/// Parses, validates and binds a definition: FROM must list base tables only
/// (no views over views), no HAVING / ORDER BY / MEDIAN, every select item a
/// grouping column or aggregate, and output names (declared or derived)
/// unique and not reserved ("__" prefix). `declared_names` positionally
/// override the derived item names and may be shorter than the item list.
Result<DefAnalysis> AnalyzeViewDefinition(
    const Catalog& catalog, const std::string& view_name,
    const std::string& select_sql,
    const std::vector<std::string>& declared_names);

}  // namespace aggview

#endif  // AGGVIEW_VIEW_DEFINITION_ANALYSIS_H_
