#include "view/rewriter.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.h"
#include "common/string_util.h"
#include "view/definition_analysis.h"

namespace aggview {

namespace {

/// Orientation-independent rendering: `a < b` and `b > a` canonicalize
/// identically, so predicate multisets compare structurally.
std::string CanonPredicate(const Predicate& p, const ColumnCatalog& cat) {
  std::string fwd = p.ToString(cat);
  Predicate flipped(p.rhs, FlipCompareOp(p.op), p.lhs);
  std::string rev = flipped.ToString(cat);
  return fwd < rev ? fwd : rev;
}

std::vector<std::string> CanonConjunction(const std::vector<Predicate>& preds,
                                          const ColumnCatalog& cat) {
  std::vector<std::string> out;
  out.reserve(preds.size());
  for (const Predicate& p : preds) out.push_back(CanonPredicate(p, cat));
  std::sort(out.begin(), out.end());
  return out;
}

/// Finds which block relation produces `id` and the table-local column.
bool LocateInRels(const Query& q, const std::vector<int>& rels, ColId id,
                  int* rel_pos, int* col) {
  for (size_t p = 0; p < rels.size(); ++p) {
    const RangeVar& rv = q.range_var(rels[p]);
    for (size_t j = 0; j < rv.columns.size(); ++j) {
      if (rv.columns[j] == id) {
        *rel_pos = static_cast<int>(p);
        *col = static_cast<int>(j);
        return true;
      }
    }
  }
  return false;
}

/// A successful match of one block against one view, ready to apply.
struct Match {
  /// Definition FROM position -> incoming range-variable id.
  std::vector<int> mapping;
  /// Backing-schema-positional ColId reuse: matched grouping columns adopt
  /// the incoming ids, everything else allocates fresh.
  std::vector<ColId> reuse;
  /// Per incoming aggregate: the backing columns (schema positions) feeding
  /// its combine, and the combine kind.
  std::vector<AggKind> combine_kinds;
  std::vector<std::vector<int>> combine_storage;
};

/// Checks one rel mapping in full: predicates, grouping containment, slot
/// coverage. Returns the completed match or nullopt.
std::optional<Match> CheckMapping(const Query& q, const ViewDefinition& view,
                                  const DefAnalysis& def,
                                  const std::vector<int>& rels,
                                  const std::vector<Predicate>& predicates,
                                  const GroupBySpec& group_by,
                                  std::vector<int> mapping) {
  // Remap the definition's predicates into the incoming column space.
  std::unordered_map<ColId, ColId> colmap;
  for (size_t p = 0; p < mapping.size(); ++p) {
    const RangeVar& dv = q.range_var(mapping[p]);  // incoming
    const RangeVar& sv =
        def.query.range_var(def.query.base_rels()[p]);  // definition
    for (size_t j = 0; j < sv.columns.size(); ++j) {
      colmap[sv.columns[j]] = dv.columns[j];
    }
  }
  std::vector<Predicate> def_preds;
  def_preds.reserve(def.query.predicates().size());
  for (const Predicate& p : def.query.predicates()) {
    def_preds.push_back(p.RemapColumns(colmap));
  }
  if (CanonConjunction(def_preds, q.columns()) !=
      CanonConjunction(predicates, q.columns())) {
    return std::nullopt;
  }

  Match m;
  m.mapping = std::move(mapping);
  m.reuse.assign(static_cast<size_t>(def.backing_schema.num_columns()),
                 kInvalidColId);

  // Grouping containment: every kept grouping column must be one of the
  // view's grouping keys (under the mapping); it then adopts that backing
  // position.
  for (ColId g : group_by.grouping) {
    int rel_pos = -1;
    int col = -1;
    if (!LocateInRels(q, m.mapping, g, &rel_pos, &col)) {
      return std::nullopt;
    }
    int key = -1;
    for (int k = 0; k < view.num_grouping; ++k) {
      if (view.grouping_rel[static_cast<size_t>(k)] == rel_pos &&
          view.grouping_col[static_cast<size_t>(k)] == col) {
        key = k;
        break;
      }
    }
    if (key < 0) return std::nullopt;
    m.reuse[static_cast<size_t>(key)] = g;
  }

  // Every aggregate must land on a stored slot of the same kind and
  // argument; COUNT(*) lands on the hidden row count.
  for (const AggregateCall& call : group_by.aggregates) {
    if (call.kind == AggKind::kCountStar) {
      m.combine_kinds.push_back(AggKind::kCountSum);
      m.combine_storage.push_back({view.rows_col});
      continue;
    }
    if (call.kind != AggKind::kSum && call.kind != AggKind::kCount &&
        call.kind != AggKind::kMin && call.kind != AggKind::kMax &&
        call.kind != AggKind::kAvg) {
      return std::nullopt;  // MEDIAN / internal kinds: not answerable
    }
    int rel_pos = -1;
    int col = -1;
    if (!LocateInRels(q, m.mapping, call.args[0], &rel_pos, &col)) {
      return std::nullopt;
    }
    const ViewAggSlot* slot = nullptr;
    for (const ViewAggSlot& s : view.slots) {
      if (s.kind == call.kind && s.arg_rel == rel_pos && s.arg_col == col) {
        slot = &s;
        break;
      }
    }
    if (slot == nullptr) return std::nullopt;
    m.combine_kinds.push_back(slot->combine);
    m.combine_storage.push_back(slot->storage);
  }
  return m;
}

/// Tries every table-preserving bijection between the definition's FROM list
/// and the block's relations.
std::optional<Match> TryMatch(const Query& q, const ViewDefinition& view,
                              const DefAnalysis& def,
                              const std::vector<int>& rels,
                              const std::vector<Predicate>& predicates,
                              const GroupBySpec& group_by) {
  if (def.base_tables.size() != rels.size()) return std::nullopt;
  std::vector<int> mapping(def.base_tables.size(), -1);
  std::vector<bool> used(rels.size(), false);
  std::optional<Match> found;
  std::function<void(size_t)> assign = [&](size_t p) {
    if (found.has_value()) return;
    if (p == mapping.size()) {
      found = CheckMapping(q, view, def, rels, predicates, group_by, mapping);
      return;
    }
    for (size_t i = 0; i < rels.size(); ++i) {
      if (used[i]) continue;
      if (q.range_var(rels[i]).table != def.base_tables[p]) continue;
      used[i] = true;
      mapping[p] = rels[i];
      assign(p + 1);
      used[i] = false;
    }
  };
  assign(0);
  return found;
}

/// Applies a match to one block: detaches the replaced relations, installs
/// the backing scan (adopting matched grouping ids), and turns the
/// aggregates into combines over the partial columns (keeping their output
/// ids). Returns the certificate.
ViewRewriteCertificate ApplyMatch(Query* query, const ViewDefinition& view,
                                  const Match& m, std::vector<int>* rels,
                                  std::vector<Predicate>* predicates,
                                  GroupBySpec* group_by) {
  ViewRewriteCertificate cert;
  cert.view_name = view.name;
  cert.view_epoch = view.epoch.load(std::memory_order_acquire);
  cert.replaced_rels = m.mapping;
  cert.replaced_predicates = *predicates;
  cert.grouping = group_by->grouping;
  cert.original_aggregates = group_by->aggregates;

  std::string alias =
      view.name + "$" + std::to_string(query->num_range_vars());
  int brel = query->AddRangeVarWithReuse(view.backing_table, alias, m.reuse);
  cert.backing_rel = brel;
  const RangeVar& brv = query->range_var(brel);

  std::vector<AggregateCall> combines;
  combines.reserve(group_by->aggregates.size());
  for (size_t i = 0; i < group_by->aggregates.size(); ++i) {
    AggregateCall call;
    call.kind = m.combine_kinds[i];
    for (int storage : m.combine_storage[i]) {
      call.args.push_back(brv.columns[static_cast<size_t>(storage)]);
    }
    call.output = group_by->aggregates[i].output;
    combines.push_back(std::move(call));
  }
  cert.combine_aggregates = combines;

  for (int rel : *rels) query->DetachRangeVar(rel);
  *rels = {brel};
  predicates->clear();
  group_by->aggregates = std::move(combines);
  return cert;
}

}  // namespace

Result<int> RewriteWithMaterializedViews(
    const Catalog& catalog, Query* query,
    std::vector<ViewRewriteCertificate>* certs) {
  if (catalog.num_views() == 0) return 0;

  // Analyze every fresh view's definition once.
  std::vector<std::pair<const ViewDefinition*, DefAnalysis>> fresh;
  for (const auto& view : catalog.views()) {
    if (!catalog.IsViewFresh(*view)) continue;
    AGGVIEW_ASSIGN_OR_RETURN(
        DefAnalysis a,
        AnalyzeViewDefinition(catalog, view->name, view->definition_sql,
                              view->column_names));
    fresh.emplace_back(view.get(), std::move(a));
  }
  if (fresh.empty()) return 0;

  int rewrites = 0;
  auto try_site = [&](std::vector<int>* rels,
                      std::vector<Predicate>* predicates,
                      GroupBySpec* group_by) -> Status {
    for (auto& [view, def] : fresh) {
      std::optional<Match> m =
          TryMatch(*query, *view, def, *rels, *predicates, *group_by);
      if (!m.has_value()) continue;
      ViewRewriteCertificate cert =
          ApplyMatch(query, *view, *m, rels, predicates, group_by);
      // Self-check: re-derive the claim from the stored definition before
      // trusting the rewrite.
      AGGVIEW_RETURN_NOT_OK(VerifyViewRewriteCertificate(*query, cert));
      if (certs != nullptr) certs->push_back(std::move(cert));
      rewrites++;
      break;
    }
    return Status::OK();
  };

  for (AggView& block : query->views()) {
    AGGVIEW_RETURN_NOT_OK(
        try_site(&block.spj.rels, &block.spj.predicates, &block.group_by));
  }
  if (query->top_group_by().has_value() && !query->base_rels().empty()) {
    AGGVIEW_RETURN_NOT_OK(try_site(&query->base_rels(), &query->predicates(),
                                   &*query->top_group_by()));
  }
  if (rewrites > 0) {
    AGGVIEW_RETURN_NOT_OK(query->Validate());
  }
  return rewrites;
}

}  // namespace aggview
