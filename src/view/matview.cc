#include "view/matview.h"

#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "catalog/statistics.h"
#include "common/string_util.h"
#include "exec/executor.h"
#include "optimizer/traditional.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "storage/table.h"
#include "transform/decompose.h"
#include "view/definition_analysis.h"

namespace aggview {

namespace {

/// Executes the analyzed definition in partial form and returns the backing
/// rows, reordered into backing-column order (grouping keys, then partials).
Result<std::vector<Row>> ComputeContent(const DefAnalysis& a,
                                        const ExecContext& ctx) {
  AGGVIEW_ASSIGN_OR_RETURN(OptimizedQuery opt, OptimizeTraditional(a.query));
  AGGVIEW_ASSIGN_OR_RETURN(QueryResult res,
                           ExecutePlan(opt.plan, opt.query, ctx));
  std::vector<int> pos;
  pos.reserve(a.content_cols.size());
  for (ColId c : a.content_cols) {
    int i = res.layout.IndexOf(c);
    if (i < 0) {
      return Status::Internal("materialization result lacks column " +
                              a.query.columns().name(c));
    }
    pos.push_back(i);
  }
  std::vector<Row> rows;
  rows.reserve(res.rows.size());
  for (const Row& r : res.rows) {
    Row out;
    out.reserve(pos.size());
    for (int i : pos) out.push_back(r[static_cast<size_t>(i)]);
    rows.push_back(std::move(out));
  }
  return rows;
}

void StampSyncedEpochs(const Catalog& catalog, ViewDefinition* view) {
  view->synced_base_epochs.clear();
  std::set<TableId> seen;
  for (TableId t : view->base_tables) {
    if (seen.insert(t).second) {
      view->synced_base_epochs.emplace_back(t, catalog.table_epoch(t));
    }
  }
}

}  // namespace

Result<const ViewDefinition*> CreateMaterializedView(Catalog* catalog,
                                                     const AstMatViewDdl& ddl,
                                                     const ExecContext& ctx) {
  if (ddl.refresh) {
    return Status::InvalidArgument(
        "CreateMaterializedView called with a REFRESH statement");
  }
  if (catalog->FindView(ddl.name) != nullptr) {
    return Status::InvalidArgument("materialized view '" + ddl.name +
                                   "' already exists");
  }
  if (catalog->FindTable(ddl.name).ok()) {
    return Status::InvalidArgument("materialized view '" + ddl.name +
                                   "' would shadow a base table");
  }
  AGGVIEW_ASSIGN_OR_RETURN(
      DefAnalysis a,
      AnalyzeViewDefinition(*catalog, ddl.name, ddl.select_sql,
                            ddl.column_names));
  AGGVIEW_ASSIGN_OR_RETURN(std::vector<Row> rows, ComputeContent(a, ctx));

  TableDef def;
  // TableIds are positional and DropView leaves the slot allocated, so the
  // backing name carries the table count to stay unique across re-creates.
  def.name = "__mv_" + ddl.name + "__" + std::to_string(catalog->num_tables());
  def.schema = a.backing_schema;
  for (int i = 0; i < a.num_grouping; ++i) def.primary_key.push_back(i);
  auto table = std::make_shared<Table>(a.backing_schema);
  table->Reserve(static_cast<int64_t>(rows.size()));
  // Append bypasses per-value validation: partial NULLs type as strings under
  // Value::type() and would fail the strict check; the executor produced
  // these rows under the very schema we derived from it.
  for (Row& r : rows) table->AppendUnchecked(std::move(r));
  def.stats = ComputeStats(*table);
  def.data = std::move(table);
  AGGVIEW_ASSIGN_OR_RETURN(TableId backing, catalog->AddTable(std::move(def)));

  auto view = std::make_unique<ViewDefinition>();
  view->name = ddl.name;
  view->definition_sql = ddl.select_sql;
  view->column_names = a.out_names;
  view->backing_table = backing;
  view->base_tables = a.base_tables;
  view->num_grouping = a.num_grouping;
  view->grouping_rel = a.grouping_rel;
  view->grouping_col = a.grouping_col;
  view->slots = a.slots;
  view->partials = a.partials;
  view->rows_col = a.rows_col;
  view->scalar = a.scalar;
  view->incremental = a.base_tables.size() == 1;
  view->epoch.store(1, std::memory_order_release);
  StampSyncedEpochs(*catalog, view.get());

  const ViewDefinition* out = view.get();
  AGGVIEW_RETURN_NOT_OK(catalog->AddView(std::move(view)));
  return out;
}

Status RefreshMaterializedView(Catalog* catalog, const std::string& name,
                               const ExecContext& ctx) {
  ViewDefinition* view = catalog->FindMutableView(name);
  if (view == nullptr) {
    return Status::InvalidArgument("no materialized view named '" + name + "'");
  }
  AGGVIEW_ASSIGN_OR_RETURN(
      DefAnalysis a,
      AnalyzeViewDefinition(*catalog, name, view->definition_sql,
                            view->column_names));
  AGGVIEW_ASSIGN_OR_RETURN(std::vector<Row> rows, ComputeContent(a, ctx));
  // mutable_table bumps the backing table's epoch, which is exactly the
  // invalidation cached view-backed plans key on.
  TableDef& backing = catalog->mutable_table(view->backing_table);
  if (a.backing_schema.num_columns() != backing.schema.num_columns()) {
    return Status::Internal(
        "materialized view '" + name +
        "' definition no longer matches its backing schema");
  }
  backing.data->ReplaceRows(std::move(rows));
  backing.stats = ComputeStats(*backing.data);
  view->epoch.fetch_add(1, std::memory_order_acq_rel);
  StampSyncedEpochs(*catalog, view);
  return Status::OK();
}

Result<std::string> ExecuteMatViewStatement(Catalog* catalog,
                                            const std::string& sql,
                                            const ExecContext& ctx) {
  AGGVIEW_ASSIGN_OR_RETURN(AstMatViewDdl ddl, ParseMatViewDdl(sql));
  if (ddl.refresh) {
    AGGVIEW_RETURN_NOT_OK(RefreshMaterializedView(catalog, ddl.name, ctx));
    const ViewDefinition* view = catalog->FindView(ddl.name);
    return StrFormat("refreshed materialized view %s (%lld groups)",
                     ddl.name.c_str(),
                     static_cast<long long>(
                         catalog->table(view->backing_table).data->row_count()));
  }
  AGGVIEW_ASSIGN_OR_RETURN(const ViewDefinition* view,
                           CreateMaterializedView(catalog, ddl, ctx));
  return StrFormat("created materialized view %s (%lld groups)",
                   ddl.name.c_str(),
                   static_cast<long long>(
                       catalog->table(view->backing_table).data->row_count()));
}

}  // namespace aggview
