#include "view/maintenance.h"

#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "catalog/statistics.h"
#include "expr/predicate.h"
#include "storage/table.h"
#include "view/definition_analysis.h"

namespace aggview {

namespace {

/// a + sign*b over non-NULL numerics; stays integer on the all-integer path
/// (matching AggAccumulator's exact integer SUM merges).
Value NumAdd(const Value& a, const Value& b, int sign) {
  if (a.is_int() && b.is_int()) {
    return Value::Int(a.AsInt() + sign * b.AsInt());
  }
  return Value::Real(a.AsNumeric() + sign * b.AsNumeric());
}

/// The partial value a single base row contributes to a fresh group.
Value InitPartial(const ViewDefinition::Partial& p, const Row& base_row) {
  switch (p.kind) {
    case AggKind::kCountStar:
      return Value::Int(1);
    case AggKind::kCount:
      return Value::Int(
          base_row[static_cast<size_t>(p.arg_col)].is_null() ? 0 : 1);
    default:  // kSum / kMin / kMax: the argument itself (NULL stays NULL)
      return base_row[static_cast<size_t>(p.arg_col)];
  }
}

/// Merges one inserted base row into a group's partial column.
void MergePartial(const ViewDefinition::Partial& p, const Row& base_row,
                  Value* slot) {
  switch (p.kind) {
    case AggKind::kCountStar:
      *slot = Value::Int(slot->AsInt() + 1);
      return;
    case AggKind::kCount:
      if (!base_row[static_cast<size_t>(p.arg_col)].is_null()) {
        *slot = Value::Int(slot->AsInt() + 1);
      }
      return;
    case AggKind::kSum: {
      const Value& arg = base_row[static_cast<size_t>(p.arg_col)];
      if (arg.is_null()) return;
      *slot = slot->is_null() ? arg : NumAdd(*slot, arg, +1);
      return;
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      const Value& arg = base_row[static_cast<size_t>(p.arg_col)];
      if (arg.is_null()) return;
      if (slot->is_null() ||
          (p.kind == AggKind::kMin ? arg.Compare(*slot) < 0
                                   : arg.Compare(*slot) > 0)) {
        *slot = arg;
      }
      return;
    }
    default:
      return;
  }
}

/// Maintains one fresh single-relation view in place. The base table has
/// already been mutated; `deleted` holds the removed rows' pre-delete values.
Status MaintainView(Catalog* catalog, ViewDefinition* view,
                    const std::vector<Row>& inserted,
                    const std::vector<Row>& deleted,
                    MaintenanceReport* report) {
  AGGVIEW_ASSIGN_OR_RETURN(
      DefAnalysis a,
      AnalyzeViewDefinition(*catalog, view->name, view->definition_sql,
                            view->column_names));
  if (a.partials.size() != view->partials.size() ||
      static_cast<int>(a.grouping_col.size()) != view->num_grouping) {
    return Status::Internal("materialized view '" + view->name +
                            "' definition drifted from its stored layout");
  }
  const int rel = a.query.base_rels()[0];
  const RangeVar& rv = a.query.range_var(rel);
  RowLayout layout(rv.columns);
  const std::vector<Predicate>& preds = a.query.predicates();
  const size_t ng = static_cast<size_t>(view->num_grouping);
  const size_t np = view->partials.size();

  // mutable_table bumps the backing epoch: cached plans over the old content
  // invalidate whether we edit in place or swap.
  TableDef& backing = catalog->mutable_table(view->backing_table);
  std::vector<Row> rows = backing.data->rows();
  std::unordered_map<Row, size_t, RowHash, RowEq> index;
  index.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    index.emplace(Row(rows[i].begin(), rows[i].begin() + ng), i);
  }

  auto group_key = [&](const Row& base_row) {
    Row key;
    key.reserve(ng);
    for (size_t k = 0; k < ng; ++k) {
      key.push_back(
          base_row[static_cast<size_t>(view->grouping_col[k])]);
    }
    return key;
  };

  std::unordered_set<size_t> touched;
  std::unordered_set<size_t> recompute;  // groups needing a MIN/MAX rescan
  bool has_minmax = false;
  for (const ViewDefinition::Partial& p : view->partials) {
    if (p.kind == AggKind::kMin || p.kind == AggKind::kMax) has_minmax = true;
  }

  for (const Row& r : deleted) {
    if (!EvalConjunction(preds, r, layout)) continue;
    auto it = index.find(group_key(r));
    if (it == index.end()) {
      return Status::Internal("materialized view '" + view->name +
                              "' is out of sync: deleted row's group missing");
    }
    Row& g = rows[it->second];
    touched.insert(it->second);
    for (size_t k = 0; k < np; ++k) {
      const ViewDefinition::Partial& p = view->partials[k];
      Value& slot = g[ng + k];
      switch (p.kind) {
        case AggKind::kCountStar:
          slot = Value::Int(slot.AsInt() - 1);
          break;
        case AggKind::kCount:
          if (!r[static_cast<size_t>(p.arg_col)].is_null()) {
            slot = Value::Int(slot.AsInt() - 1);
          }
          break;
        case AggKind::kSum:
          if (!r[static_cast<size_t>(p.arg_col)].is_null()) {
            slot = NumAdd(slot, r[static_cast<size_t>(p.arg_col)], -1);
          }
          break;
        case AggKind::kMin:
        case AggKind::kMax:
          if (!r[static_cast<size_t>(p.arg_col)].is_null()) {
            recompute.insert(it->second);
          }
          break;
        default:
          break;
      }
    }
  }

  for (const Row& r : inserted) {
    if (!EvalConjunction(preds, r, layout)) continue;
    Row key = group_key(r);
    auto it = index.find(key);
    if (it == index.end()) {
      Row g = key;
      g.reserve(ng + np);
      for (const ViewDefinition::Partial& p : view->partials) {
        g.push_back(InitPartial(p, r));
      }
      size_t idx = rows.size();
      rows.push_back(std::move(g));
      index.emplace(std::move(key), idx);
      touched.insert(idx);
      if (report != nullptr) report->groups_added++;
    } else {
      Row& g = rows[it->second];
      touched.insert(it->second);
      for (size_t k = 0; k < np; ++k) {
        MergePartial(view->partials[k], r, &g[ng + k]);
      }
    }
  }

  // Restore SUM partials to NULL when their COUNT witness (same argument)
  // dropped to zero: the group no longer holds any non-NULL argument value.
  for (size_t i : touched) {
    Row& g = rows[i];
    for (size_t k = 0; k < np; ++k) {
      const ViewDefinition::Partial& p = view->partials[k];
      if (p.kind != AggKind::kSum) continue;
      for (size_t w = 0; w < np; ++w) {
        const ViewDefinition::Partial& c = view->partials[w];
        if (c.kind == AggKind::kCount && c.arg_rel == p.arg_rel &&
            c.arg_col == p.arg_col) {
          if (g[ng + w].AsInt() == 0) g[ng + k] = Value::Null();
          break;
        }
      }
    }
  }

  // Groups emptied by the delta disappear — except in a scalar view, whose
  // single row stays with empty-aggregate values (0 counts, NULL extremes).
  const size_t rows_idx =
      static_cast<size_t>(view->rows_col);  // backing column of __rows
  std::vector<Row> final_rows;
  final_rows.reserve(rows.size());
  std::unordered_set<size_t> removed;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i][rows_idx].AsInt() == 0) {
      if (view->scalar) {
        for (size_t k = 0; k < np; ++k) {
          const ViewDefinition::Partial& p = view->partials[k];
          rows[i][ng + k] = (p.kind == AggKind::kCount ||
                             p.kind == AggKind::kCountStar)
                                ? Value::Int(0)
                                : Value::Null();
        }
      } else {
        removed.insert(i);
        if (report != nullptr) report->groups_removed++;
        continue;
      }
    }
    final_rows.push_back(std::move(rows[i]));
  }

  if (has_minmax && !recompute.empty()) {
    // Batch rescan: re-derive the MIN/MAX partials of every surviving hit
    // group from the post-delta base rows in one pass.
    std::unordered_map<Row, size_t, RowHash, RowEq> rescan;
    for (size_t i = 0; i < final_rows.size(); ++i) {
      // Indices shifted by removals; match by key instead.
      Row key(final_rows[i].begin(), final_rows[i].begin() + ng);
      auto it = index.find(key);
      if (it != index.end() && recompute.count(it->second) > 0 &&
          removed.count(it->second) == 0) {
        for (size_t k = 0; k < np; ++k) {
          const ViewDefinition::Partial& p = view->partials[k];
          if (p.kind == AggKind::kMin || p.kind == AggKind::kMax) {
            final_rows[i][ng + k] = Value::Null();
          }
        }
        rescan.emplace(std::move(key), i);
        if (report != nullptr) report->groups_recomputed++;
      }
    }
    const Table& base = *catalog->table(view->base_tables[0]).data;
    for (const Row& r : base.rows()) {
      if (!EvalConjunction(preds, r, layout)) continue;
      auto it = rescan.find(group_key(r));
      if (it == rescan.end()) continue;
      Row& g = final_rows[it->second];
      for (size_t k = 0; k < np; ++k) {
        const ViewDefinition::Partial& p = view->partials[k];
        if (p.kind == AggKind::kMin || p.kind == AggKind::kMax) {
          MergePartial(p, r, &g[ng + k]);
        }
      }
    }
  }

  if (report != nullptr) {
    report->groups_touched += static_cast<int64_t>(touched.size());
    report->views_maintained++;
  }
  backing.data->ReplaceRows(std::move(final_rows));
  backing.stats = ComputeStats(*backing.data);
  view->epoch.fetch_add(1, std::memory_order_acq_rel);
  view->synced_base_epochs.clear();
  std::set<TableId> seen;
  for (TableId t : view->base_tables) {
    if (seen.insert(t).second) {
      view->synced_base_epochs.emplace_back(t, catalog->table_epoch(t));
    }
  }
  return Status::OK();
}

}  // namespace

Status ApplyTableDelta(Catalog* catalog, const TableDelta& delta,
                       MaintenanceReport* report) {
  if (delta.table < 0 || delta.table >= catalog->num_tables()) {
    return Status::InvalidArgument("delta references an unknown table");
  }
  if (catalog->table(delta.table).data == nullptr) {
    return Status::InvalidArgument("delta target table has no data loaded");
  }
  {
    const TableDef& def = catalog->table(delta.table);
    const int64_t n = def.data->row_count();
    for (int64_t i : delta.deletes) {
      if (i < 0 || i >= n) {
        return Status::InvalidArgument("delete index out of range");
      }
    }
    for (const Row& r : delta.inserts) {
      if (static_cast<int>(r.size()) != def.schema.num_columns()) {
        return Status::InvalidArgument("inserted row arity does not match");
      }
      for (int c = 0; c < def.schema.num_columns(); ++c) {
        const Value& v = r[static_cast<size_t>(c)];
        if (!v.is_null() && v.type() != def.schema.column(c).type) {
          return Status::InvalidArgument("type mismatch in inserted column '" +
                                         def.schema.column(c).name + "'");
        }
      }
    }
  }

  // Freshness must be judged against the pre-delta epochs.
  std::vector<std::pair<ViewDefinition*, bool>> affected;  // view, was_fresh
  for (const auto& view : catalog->views()) {
    bool uses = false;
    for (TableId t : view->base_tables) uses |= (t == delta.table);
    if (uses) affected.emplace_back(view.get(), catalog->IsViewFresh(*view));
  }

  // Snapshot deleted row values, then mutate the base (epoch bump + exact
  // stats recompute, which the dataflow verifier requires).
  std::vector<Row> deleted;
  deleted.reserve(delta.deletes.size());
  {
    TableDef& def = catalog->mutable_table(delta.table);
    for (int64_t i : delta.deletes) deleted.push_back(def.data->row(i));
    AGGVIEW_RETURN_NOT_OK(def.data->DeleteRows(delta.deletes));
    for (const Row& r : delta.inserts) def.data->AppendUnchecked(r);
    def.stats = ComputeStats(*def.data);
  }

  for (auto& [view, was_fresh] : affected) {
    if (!view->incremental || !was_fresh) {
      if (report != nullptr) report->views_marked_stale++;
      // The backing content is untouched but the view stopped being a valid
      // answer source; bump the epoch so plans stamped "v:<name>" invalidate
      // instead of serving pre-delta bytes from the plan cache.
      view->epoch.fetch_add(1, std::memory_order_acq_rel);
      continue;  // stale via the epoch mismatch; REFRESH re-materializes
    }
    AGGVIEW_RETURN_NOT_OK(
        MaintainView(catalog, view, delta.inserts, deleted, report));
  }
  return Status::OK();
}

}  // namespace aggview
