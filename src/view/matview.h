#ifndef AGGVIEW_VIEW_MATVIEW_H_
#define AGGVIEW_VIEW_MATVIEW_H_

#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/exec_context.h"
#include "sql/ast.h"

namespace aggview {

/// Materialized-view lifecycle: CREATE builds the backing table (one row per
/// group: grouping keys, then deduplicated partial-aggregate columns, then
/// the hidden "__rows" COUNT(*)), registers it in the catalog with the
/// grouping prefix as primary key, and records the ViewDefinition; REFRESH
/// recomputes the content from the current base data and swaps it in.
///
/// Definitions are the binder's aggregate-query class with restrictions:
/// FROM lists base tables only (no views over views), no HAVING, no ORDER
/// BY, no MEDIAN (not decomposable — its partials cannot be maintained or
/// rolled up). A definition without GROUP BY is a scalar view: its backing
/// table holds exactly one row, kept (with empty-aggregate values) even when
/// the base goes empty.

/// Creates the view described by a parsed CREATE MATERIALIZED VIEW
/// statement: analyzes and binds the definition, executes it in partial form
/// under `ctx`, loads the backing table, and registers the ViewDefinition.
/// Returns the registered definition (owned by the catalog).
Result<const ViewDefinition*> CreateMaterializedView(
    Catalog* catalog, const AstMatViewDdl& ddl,
    const ExecContext& ctx = ExecContext::Default());

/// Recomputes the view's content from the current base tables and replaces
/// the backing rows. Bumps the backing table's epoch (invalidating cached
/// plans that scan it), the view's content epoch, and re-stamps the synced
/// base epochs so the view is fresh again.
Status RefreshMaterializedView(Catalog* catalog, const std::string& name,
                               const ExecContext& ctx = ExecContext::Default());

/// Parses and runs one materialized-view DDL statement (CREATE or REFRESH),
/// returning a one-line human-readable confirmation.
Result<std::string> ExecuteMatViewStatement(
    Catalog* catalog, const std::string& sql,
    const ExecContext& ctx = ExecContext::Default());

}  // namespace aggview

#endif  // AGGVIEW_VIEW_MATVIEW_H_
