#include "view/definition_analysis.h"

#include <map>
#include <set>
#include <utility>

#include "common/string_util.h"
#include "sql/binder.h"
#include "sql/parser.h"
#include "transform/decompose.h"

namespace aggview {

namespace {

/// Finds the (FROM position, table-local column) a definition-space ColId
/// came from.
Result<std::pair<int, int>> LocateColumn(const Query& query, ColId id) {
  const std::vector<int>& rels = query.base_rels();
  for (size_t p = 0; p < rels.size(); ++p) {
    const RangeVar& rv = query.range_var(rels[p]);
    for (size_t j = 0; j < rv.columns.size(); ++j) {
      if (rv.columns[j] == id) {
        return std::make_pair(static_cast<int>(p), static_cast<int>(j));
      }
    }
  }
  return Status::Internal("column " + query.columns().name(id) +
                          " is not a base column of the view definition");
}

}  // namespace

Result<DefAnalysis> AnalyzeViewDefinition(
    const Catalog& catalog, const std::string& view_name,
    const std::string& select_sql,
    const std::vector<std::string>& declared_names) {
  AGGVIEW_ASSIGN_OR_RETURN(AstSelect ast, ParseSelect(select_sql));
  auto reject = [&](const std::string& what) {
    return Status::InvalidArgument("materialized view '" + view_name + "': " +
                                   what);
  };
  if (!ast.having.empty()) {
    return reject("HAVING is not supported in definitions");
  }
  if (!ast.order_by.empty()) {
    return reject("ORDER BY is not supported in definitions");
  }
  for (const AstTableRef& ref : ast.from) {
    if (catalog.FindView(ref.table) != nullptr) {
      return reject("definitions over materialized views are not supported ('" +
                    ref.table + "')");
    }
  }
  if (declared_names.size() > ast.items.size()) {
    return reject("more column names than select items");
  }

  DefAnalysis a{Query(&catalog)};

  // Output names are purely syntactic: declared name, else alias, else the
  // referenced column's name.
  std::set<std::string> name_set;
  for (size_t i = 0; i < ast.items.size(); ++i) {
    std::string name;
    if (i < declared_names.size()) {
      name = declared_names[i];
    } else if (!ast.items[i].alias.empty()) {
      name = ast.items[i].alias;
    } else if (ast.items[i].expr->kind == AstExpr::Kind::kColumnRef) {
      name = ast.items[i].expr->name;
    } else if (ast.items[i].expr->kind == AstExpr::Kind::kAggregate) {
      // Unnamed aggregate: a positional default ("sum_1", "count_star_3").
      name = ast.items[i].expr->agg_kind == AggKind::kCountStar
                 ? "count_star"
                 : AggKindName(ast.items[i].expr->agg_kind);
      name += "_" + std::to_string(i);
    } else {
      return reject("select item needs a column name: " +
                    ast.items[i].expr->ToString());
    }
    if (name.rfind("__", 0) == 0) {
      return reject("output name '" + name + "' uses the reserved '__' prefix");
    }
    if (!name_set.insert(name).second) {
      return reject("duplicate output name '" + name + "'");
    }
    a.out_names.push_back(std::move(name));
  }

  AstScript script;
  script.query = std::move(ast);
  AGGVIEW_ASSIGN_OR_RETURN(a.query, BindScript(catalog, script));
  Query& q = a.query;
  if (!q.top_group_by().has_value()) {
    return reject("definition must be an aggregate query (GROUP BY and/or "
                  "aggregates in the select list)");
  }
  a.item_cols = q.select_list();
  for (int rel : q.base_rels()) {
    a.base_tables.push_back(q.range_var(rel).table);
  }

  GroupBySpec& g0 = *q.top_group_by();
  a.grouping_ids = g0.grouping;
  a.num_grouping = static_cast<int>(g0.grouping.size());
  a.scalar = g0.grouping.empty();
  for (ColId g : g0.grouping) {
    AGGVIEW_ASSIGN_OR_RETURN(auto loc, LocateColumn(q, g));
    a.grouping_rel.push_back(loc.first);
    a.grouping_col.push_back(loc.second);
  }

  // Deduplicated partial columns. Keyed by (kind, definition arg ColId) so
  // AVG(x)'s psum/pcount are shared with SUM(x)/COUNT(x), and every SUM gets
  // a COUNT witness for NULL-restoring retraction.
  std::map<std::pair<AggKind, ColId>, int> partial_index;
  auto ensure_partial = [&](AggKind kind, ColId arg) -> Result<int> {
    auto key = std::make_pair(kind, arg);
    auto it = partial_index.find(key);
    if (it != partial_index.end()) return it->second;
    ViewDefinition::Partial p;
    p.kind = kind;
    if (arg != kInvalidColId) {
      AGGVIEW_ASSIGN_OR_RETURN(auto loc, LocateColumn(q, arg));
      p.arg_rel = loc.first;
      p.arg_col = loc.second;
    }
    int idx = a.num_grouping + static_cast<int>(a.partials.size());
    a.partials.push_back(p);
    partial_index.emplace(key, idx);
    return idx;
  };

  a.def_aggregates = g0.aggregates;
  for (const AggregateCall& call : g0.aggregates) {
    if (call.kind == AggKind::kMedian) {
      return reject("MEDIAN is not decomposable and cannot be materialized");
    }
    AGGVIEW_ASSIGN_OR_RETURN(AggDecomposition d, DecomposeAggregate(call.kind));
    ViewAggSlot slot;
    slot.kind = call.kind;
    slot.combine = d.combine;
    slot.display = call.ToString(q.columns());
    ColId arg = kInvalidColId;
    if (call.kind != AggKind::kCountStar) {
      arg = call.args[0];
      AGGVIEW_ASSIGN_OR_RETURN(auto loc, LocateColumn(q, arg));
      slot.arg_rel = loc.first;
      slot.arg_col = loc.second;
    }
    switch (call.kind) {
      case AggKind::kSum: {
        AGGVIEW_ASSIGN_OR_RETURN(int psum, ensure_partial(AggKind::kSum, arg));
        AGGVIEW_ASSIGN_OR_RETURN(int nn, ensure_partial(AggKind::kCount, arg));
        slot.storage = {psum};
        slot.nn_count = nn;
        break;
      }
      case AggKind::kCount: {
        AGGVIEW_ASSIGN_OR_RETURN(int pc, ensure_partial(AggKind::kCount, arg));
        slot.storage = {pc};
        break;
      }
      case AggKind::kCountStar: {
        AGGVIEW_ASSIGN_OR_RETURN(
            int rc, ensure_partial(AggKind::kCountStar, kInvalidColId));
        slot.storage = {rc};
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        AGGVIEW_ASSIGN_OR_RETURN(int p, ensure_partial(call.kind, arg));
        slot.storage = {p};
        break;
      }
      case AggKind::kAvg: {
        AGGVIEW_ASSIGN_OR_RETURN(int psum, ensure_partial(AggKind::kSum, arg));
        AGGVIEW_ASSIGN_OR_RETURN(int pc, ensure_partial(AggKind::kCount, arg));
        slot.storage = {psum, pc};
        slot.nn_count = pc;
        break;
      }
      default:
        return reject(std::string("unsupported aggregate '") +
                      AggKindName(call.kind) + "' in a definition");
    }
    a.slots.push_back(std::move(slot));
  }
  AGGVIEW_ASSIGN_OR_RETURN(a.rows_col,
                           ensure_partial(AggKind::kCountStar, kInvalidColId));

  // Mutate the bound definition into partial form: the group-by computes the
  // partial columns and the select list is exactly the backing layout.
  std::vector<AggregateCall> partial_calls;
  std::vector<ColId> partial_outputs;
  for (size_t i = 0; i < a.partials.size(); ++i) {
    const ViewDefinition::Partial& p = a.partials[i];
    AggregateCall call;
    call.kind = p.kind;
    if (p.kind != AggKind::kCountStar) {
      const RangeVar& rv =
          q.range_var(q.base_rels()[static_cast<size_t>(p.arg_rel)]);
      call.args.push_back(rv.columns[static_cast<size_t>(p.arg_col)]);
    }
    std::string name = p.kind == AggKind::kCountStar
                           ? "__rows"
                           : StrFormat("p%zu_%s", i, AggKindName(p.kind));
    DataType type = call.ResultType(q.columns());
    call.output = q.AddAggregateOutput(call.kind, call.args, name, type);
    partial_outputs.push_back(call.output);
    partial_calls.push_back(std::move(call));
  }
  g0.aggregates = std::move(partial_calls);
  q.select_list() = a.grouping_ids;
  q.select_list().insert(q.select_list().end(), partial_outputs.begin(),
                         partial_outputs.end());
  q.order_by().clear();
  a.content_cols = q.select_list();

  // Backing schema: grouping keys named after their visible output (else
  // "k<i>"), partial columns after their select-list names.
  for (size_t k = 0; k < a.grouping_ids.size(); ++k) {
    ColId g = a.grouping_ids[k];
    std::string name = StrFormat("k%zu", k);
    for (size_t i = 0; i < a.item_cols.size(); ++i) {
      if (a.item_cols[i] == g) {
        name = a.out_names[i];
        break;
      }
    }
    a.backing_schema.AddColumn(
        ColumnSpec(name, q.columns().type(g), q.columns().width(g)));
  }
  for (ColId p : partial_outputs) {
    a.backing_schema.AddColumn(ColumnSpec(
        q.columns().name(p), q.columns().type(p), q.columns().width(p)));
  }

  AGGVIEW_RETURN_NOT_OK(q.Validate());
  return a;
}

}  // namespace aggview
