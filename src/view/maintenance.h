#ifndef AGGVIEW_VIEW_MAINTENANCE_H_
#define AGGVIEW_VIEW_MAINTENANCE_H_

#include <cstdint>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "types/value.h"

namespace aggview {

/// A batch mutation of one base table: rows to delete (indices into the
/// table's current row store) and rows to append (positionally aligned with
/// the schema; NULLs allowed).
struct TableDelta {
  TableId table = -1;
  std::vector<Row> inserts;
  std::vector<int64_t> deletes;
};

/// Counters of one ApplyTableDelta call (all views combined).
struct MaintenanceReport {
  /// Views updated in place by per-group delta merging.
  int views_maintained = 0;
  /// Views left stale (multi-relation, or already stale before the delta);
  /// they need REFRESH before the rewriter will use them again.
  int views_marked_stale = 0;
  int64_t groups_touched = 0;
  int64_t groups_added = 0;
  int64_t groups_removed = 0;
  /// Groups whose MIN/MAX partials were re-derived by a base scan (deletes
  /// cannot be retracted arithmetically for extrema).
  int64_t groups_recomputed = 0;
};

/// Applies `delta` to the base table (bumping its epoch and recomputing its
/// exact statistics), then maintains every materialized view over it:
///
///  - fresh single-relation views are updated incrementally: inserted and
///    deleted rows are filtered by the definition predicates and merged into
///    the per-group partial columns (COUNT/SUM/AVG retract arithmetically,
///    with a COUNT witness restoring SUM/AVG partials to NULL when the last
///    non-NULL argument leaves a group; MIN/MAX partials of groups hit by a
///    delete are re-derived from the base in one batch scan). A group whose
///    hidden row count reaches zero is removed — except in a scalar view,
///    which keeps its single row with empty-aggregate values;
///  - multi-relation views and views that were already stale simply go (or
///    stay) stale via the epoch bookkeeping.
///
/// Maintained views stay fresh (their synced base epochs are re-stamped) and
/// bump their content epoch; their backing table's epoch is bumped too, so
/// cached plans scanning the old content are invalidated.
Status ApplyTableDelta(Catalog* catalog, const TableDelta& delta,
                       MaintenanceReport* report = nullptr);

}  // namespace aggview

#endif  // AGGVIEW_VIEW_MAINTENANCE_H_
