#ifndef AGGVIEW_VIEW_REWRITER_H_
#define AGGVIEW_VIEW_REWRITER_H_

#include <vector>

#include "algebra/query.h"
#include "analysis/certificate.h"
#include "catalog/catalog.h"
#include "common/result.h"

namespace aggview {

/// View-matching rewriter: answers blocks of `query` from fresh materialized
/// views instead of base-table joins. Runs between bind and optimization;
/// the rewritten query then optimizes normally (the backing scans are plain
/// catalog tables).
///
/// Two match sites, both requiring containment in the strict sense — the
/// block's relations biject onto the definition's FROM (same catalog
/// tables), its predicate conjunction equals the definition's WHERE as a
/// multiset under the mapping, its grouping columns are a subset of the
/// view's grouping (the residual group-by is then a roll-up over whole
/// groups, legal because the backing key is exactly the grouping prefix and
/// every stored partial re-aggregates: SUM of partial sums, kCountSum of
/// partial counts, MIN of partial minima, kAvgFinal over summed
/// sum/count), and every aggregate maps onto a stored slot by kind and
/// argument (COUNT(*) onto the hidden row count):
///
///  - an AggView block (a view inlined into the query, e.g. a materialized
///    view referenced in FROM) is rewritten in place to scan the backing
///    table;
///  - the top block of a view-free aggregate query (including scalar
///    aggregates — matching a scalar view's single-row backing table).
///
/// Replaced range variables are detached; the backing scan adopts the
/// incoming ColIds of the matched grouping columns and the combine calls
/// reuse the original aggregate outputs, so references above the block
/// (HAVING, select list, ORDER BY, other predicates) survive untouched.
///
/// Every applied rewrite emits a ViewRewriteCertificate and is immediately
/// re-verified with VerifyViewRewriteCertificate; a verification failure
/// aborts the rewrite with an error rather than returning a wrong plan.
///
/// Only fresh views participate (Catalog::IsViewFresh); stale views are
/// skipped until REFRESH. Returns the number of blocks rewritten;
/// certificates are appended to `certs` when non-null.
Result<int> RewriteWithMaterializedViews(
    const Catalog& catalog, Query* query,
    std::vector<ViewRewriteCertificate>* certs = nullptr);

}  // namespace aggview

#endif  // AGGVIEW_VIEW_REWRITER_H_
