#include "verify/prover.h"

#include <cstdlib>
#include <fstream>
#include <utility>

#include "sql/binder.h"

namespace aggview {

namespace {

std::string SanitizeFileName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(keep ? c : '_');
  }
  return out;
}

std::string SqlType(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
  }
  return "BIGINT";
}

/// Fingerprint on success, "ERROR: <status>" on failure.
std::string Outcome(const Result<QueryResult>& r) {
  if (r.ok()) return r.value().Fingerprint();
  return "ERROR: " + r.status().ToString();
}

}  // namespace

DataSwapGuard::DataSwapGuard(Catalog* catalog, const SchemaSkeleton& skeleton)
    : catalog_(catalog), skeleton_(&skeleton) {
  saved_.reserve(skeleton.tables.size());
  for (const TableSkeleton& ts : skeleton.tables) {
    saved_.push_back(catalog_->mutable_table(ts.table).data);
  }
}

DataSwapGuard::~DataSwapGuard() {
  for (size_t i = 0; i < skeleton_->tables.size(); ++i) {
    catalog_->mutable_table(skeleton_->tables[i].table).data = saved_[i];
  }
}

void DataSwapGuard::Install(const BoundedDatabase& db) {
  for (size_t i = 0; i < skeleton_->tables.size(); ++i) {
    catalog_->mutable_table(skeleton_->tables[i].table).data = db.tables[i];
  }
}

std::string RenderCounterexampleRepro(const SchemaSkeleton& skeleton,
                                      const BoundedDatabase& db,
                                      const std::string& description,
                                      const std::string& pre_text,
                                      const std::string& post_text,
                                      const std::string& pre_outcome,
                                      const std::string& post_outcome) {
  std::string out;
  out += "-- Counterexample: " + description + "\n";
  out += "-- Total rows: " + std::to_string(db.total_rows()) + "\n\n";
  for (size_t t = 0; t < skeleton.tables.size(); ++t) {
    const TableSkeleton& ts = skeleton.tables[t];
    out += "CREATE TABLE " + ts.name + " (";
    for (int c = 0; c < ts.schema.num_columns(); ++c) {
      if (c > 0) out += ", ";
      out += ts.schema.column(c).name + " " + SqlType(ts.schema.column(c).type);
      if (c == ts.key_column) out += " PRIMARY KEY";
    }
    out += ");\n";
    const Table& table = *db.tables[t];
    for (const Row& row : table.rows()) {
      out += "INSERT INTO " + ts.name + " VALUES (";
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out += ", ";
        out += row[c].is_null() ? "NULL" : row[c].ToString();
      }
      out += ");\n";
    }
    out += "\n";
  }
  out += "-- Pre plan:\n" + pre_text;
  if (out.back() != '\n') out += "\n";
  out += "\n-- Post plan:\n" + post_text;
  if (out.back() != '\n') out += "\n";
  out += "\n-- Pre outcome:\n" + pre_outcome;
  if (out.back() != '\n') out += "\n";
  out += "\n-- Post outcome:\n" + post_outcome;
  if (out.back() != '\n') out += "\n";
  return out;
}

Result<ProofResult> ProveEquivalence(Catalog* catalog,
                                     const SchemaSkeleton& skeleton,
                                     const ExecutionSpec& pre,
                                     const ExecutionSpec& post,
                                     const ProverOptions& options) {
  if (catalog == nullptr || pre.query == nullptr || post.query == nullptr ||
      !pre.plan || !post.plan) {
    return Status::InvalidArgument("prover: null catalog, query, or plan");
  }

  DataSwapGuard guard(catalog, skeleton);

  // Refutation check for one installed database.
  struct Outcomes {
    bool refuted = false;
    bool both_failed = false;
    std::string pre_outcome;
    std::string post_outcome;
  };
  auto check = [&](const BoundedDatabase& db) -> Result<Outcomes> {
    guard.Install(db);
    if (options.post_install) {
      AGGVIEW_RETURN_NOT_OK(options.post_install(catalog));
    }
    Result<QueryResult> pre_r = ExecutePlan(pre.plan, *pre.query, pre.ctx);
    Result<QueryResult> post_r = ExecutePlan(post.plan, *post.query, post.ctx);
    Outcomes o;
    o.pre_outcome = Outcome(pre_r);
    o.post_outcome = Outcome(post_r);
    if (pre_r.ok() && post_r.ok()) {
      o.refuted = o.pre_outcome != o.post_outcome;
    } else if (pre_r.ok() != post_r.ok()) {
      o.refuted = true;  // one side rejects a database the other accepts
    } else {
      o.both_failed = true;
    }
    return o;
  };

  ProofResult result;
  BoundedDatabase first_refuting;
  AGGVIEW_ASSIGN_OR_RETURN(
      result.databases_checked,
      ForEachBoundedDatabase(
          skeleton, options.bounds,
          [&](const BoundedDatabase& db) -> Result<bool> {
            AGGVIEW_ASSIGN_OR_RETURN(Outcomes o, check(db));
            if (o.both_failed) ++result.agreeing_failures;
            if (!o.refuted) return true;
            first_refuting = CloneDatabase(skeleton, db);
            return false;  // stop: counterexample found
          }));

  if (first_refuting.tables.empty()) {
    result.proved = true;
    return result;
  }

  Counterexample cex;
  cex.db = std::move(first_refuting);
  if (options.shrink) {
    AGGVIEW_ASSIGN_OR_RETURN(
        cex.db, ShrinkCounterexample(
                    skeleton, cex.db,
                    [&](const BoundedDatabase& db) -> Result<bool> {
                      AGGVIEW_ASSIGN_OR_RETURN(Outcomes o, check(db));
                      return o.refuted;
                    },
                    &cex.shrink_stats));
  }
  AGGVIEW_ASSIGN_OR_RETURN(Outcomes final_outcomes, check(cex.db));
  cex.pre_outcome = final_outcomes.pre_outcome;
  cex.post_outcome = final_outcomes.post_outcome;

  std::string pre_label = pre.label.empty() ? "pre" : pre.label;
  std::string post_label = post.label.empty() ? "post" : post.label;
  cex.repro = RenderCounterexampleRepro(
      skeleton, cex.db, options.name + " (" + pre_label + " vs " + post_label + ")",
      PlanToString(pre.plan, *pre.query), PlanToString(post.plan, *post.query),
      cex.pre_outcome, cex.post_outcome);

  std::string dir = options.repro_dir;
  if (dir.empty()) {
    const char* env = std::getenv("AGGVIEW_PROVER_REPRO_DIR");
    if (env != nullptr) dir = env;
  }
  if (!dir.empty()) {
    std::string path =
        dir + "/counterexample_" + SanitizeFileName(options.name) + ".sql";
    std::ofstream file(path);
    if (file) {
      file << cex.repro;
      cex.repro_path = path;
    }
  }

  result.counterexample = std::move(cex);
  return result;
}

Result<SqlProof> ProveSqlTransformation(Catalog* catalog,
                                        const std::string& sql,
                                        const OptimizerOptions& pre_options,
                                        const OptimizerOptions& post_options,
                                        const ProverOptions& options) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("prover: null catalog");
  }
  AGGVIEW_ASSIGN_OR_RETURN(Query bound, ParseAndBind(*catalog, sql));

  SqlProof proof;
  AGGVIEW_ASSIGN_OR_RETURN(proof.pre,
                           OptimizeQueryWithAggViews(bound, pre_options));
  AGGVIEW_ASSIGN_OR_RETURN(proof.post,
                           OptimizeQueryWithAggViews(bound, post_options));

  // The skeleton unions both rewritten queries' referenced columns with the
  // columns the transformation certificates claim (the certificates expose
  // the skeleton of what they rely on; empty outside paranoid mode).
  std::vector<SkeletonSource> sources;
  sources.push_back(
      SkeletonSource{&proof.pre.query, proof.pre.audit.ReferencedColumns()});
  sources.push_back(
      SkeletonSource{&proof.post.query, proof.post.audit.ReferencedColumns()});
  AGGVIEW_ASSIGN_OR_RETURN(proof.skeleton, ExtractSkeleton(*catalog, sources));

  ExecutionSpec pre_spec;
  pre_spec.query = &proof.pre.query;
  pre_spec.plan = proof.pre.plan;
  pre_spec.label = "pre: " + proof.pre.description;
  ExecutionSpec post_spec;
  post_spec.query = &proof.post.query;
  post_spec.plan = proof.post.plan;
  post_spec.label = "post: " + proof.post.description;

  AGGVIEW_ASSIGN_OR_RETURN(
      proof.result,
      ProveEquivalence(catalog, proof.skeleton, pre_spec, post_spec, options));
  return proof;
}

}  // namespace aggview
