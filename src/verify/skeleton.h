#ifndef AGGVIEW_VERIFY_SKELETON_H_
#define AGGVIEW_VERIFY_SKELETON_H_

#include <set>
#include <string>
#include <vector>

#include "algebra/query.h"
#include "catalog/catalog.h"
#include "common/result.h"
#include "types/value.h"

namespace aggview {

/// Schema skeleton of a transformation: the tables, keys, foreign keys, and
/// columns a bounded counterexample search must vary — extracted from the
/// queries of a pre/post plan pair and from the transformation certificates'
/// column claims (certificate ReferencedColumns). The skeleton is what makes
/// the small-scope enumeration tractable: columns the plans never look at
/// are pinned to a single value instead of multiplying the state space.

/// One base-table column as the prover sees it.
struct SkeletonColumn {
  /// Position in the table schema.
  int index = -1;
  std::string name;
  DataType type = DataType::kInt64;
  /// Some query predicate, grouping list, aggregate argument, select list, or
  /// certificate claim mentions the column; irrelevant columns are pinned.
  bool relevant = false;
  /// The table's single-column primary key. Key values are canonical row
  /// labels (0..rows-1), not enumerated — see enumerate.h.
  bool is_key = false;
  /// Resolved single-column foreign key: values are drawn from the referenced
  /// table's key labels (plus NULL). -1 when not a foreign key.
  TableId fk_table = -1;
  /// Whether the enumeration may place NULL here (keys never; everything
  /// else when EnumerationBounds::with_null).
  bool nullable = false;
  /// Non-null candidate values of a relevant non-key, non-FK column: the base
  /// small-scope domain {0, 1} plus every literal the queries compare the
  /// column against (with +/-1 neighbours for inequalities, so comparisons
  /// have rows on both sides of the boundary). Sorted, deduplicated.
  std::vector<Value> domain;
  /// The single value irrelevant columns are pinned to.
  Value pinned;
  /// Irrelevant column that participates in a declared unique key: pinned to
  /// a per-row distinct value (derived from the row position) instead of
  /// `pinned`, so the pinning itself never violates the constraint.
  bool pin_distinct = false;
};

/// One base table of the skeleton.
struct TableSkeleton {
  TableId table = -1;
  std::string name;
  Schema schema;
  std::vector<SkeletonColumn> columns;
  /// Schema position of the single-column primary key; -1 when the table has
  /// no declared key (scans then synthesize rowids, and rows need no labels).
  int key_column = -1;
  /// Declared unique column sets (including the primary key when present);
  /// the enumeration discards databases violating any of them, since the
  /// transformations' legality proofs assume the declared constraints hold.
  std::vector<std::vector<int>> unique_keys;
};

/// The full skeleton: tables ordered so every foreign-key-referenced table
/// precedes its referencers (the enumeration needs referenced key labels
/// before it can draw foreign-key values).
struct SchemaSkeleton {
  std::vector<TableSkeleton> tables;

  /// Index into `tables` of catalog table `id`; -1 when absent.
  int IndexOf(TableId id) const;
};

/// One query contributing to the skeleton, plus any extra columns its
/// transformation certificates claim (TransformationAudit::ReferencedColumns;
/// the ids live in the query's column space).
struct SkeletonSource {
  const Query* query = nullptr;
  std::set<ColId> extra_columns;
};

/// Extracts the skeleton for a set of queries over one catalog. Fails with
/// Unsupported when the queries fall outside the prover's scope: composite
/// or multi-column keys/foreign keys, relevant string columns, key columns
/// used in anything but column-column equalities / grouping / output (the
/// canonical-labeling argument needs keys to be opaque labels), foreign-key
/// cycles, or a per-column domain larger than kMaxDomainValues.
Result<SchemaSkeleton> ExtractSkeleton(const Catalog& catalog,
                                       const std::vector<SkeletonSource>& sources);

/// Cap on a single column's enumerated domain (base values + query literals).
inline constexpr int kMaxDomainValues = 8;

}  // namespace aggview

#endif  // AGGVIEW_VERIFY_SKELETON_H_
