#include "verify/enumerate.h"

#include <set>
#include <string>
#include <utility>

namespace aggview {

namespace {

/// Typed canonical label for row position `i` (keys and distinct pins).
Value TypedLabel(DataType type, int64_t i) {
  switch (type) {
    case DataType::kInt64:
      return Value::Int(i);
    case DataType::kDouble:
      return Value::Real(static_cast<double>(i));
    case DataType::kString:
      return Value::Str("k" + std::to_string(i));
  }
  return Value::Int(i);
}

/// Candidate values of one column of one table, given the row counts of the
/// already-enumerated (referenced) tables. Key and distinct-pin columns have
/// no candidates — their value is the row position.
struct CellDomain {
  bool positional = false;  // key or pin_distinct: value = TypedLabel(row)
  std::vector<Value> values;
};

std::vector<CellDomain> BuildDomains(const TableSkeleton& ts,
                                     const EnumerationBounds& bounds,
                                     const std::vector<int64_t>& rows_so_far,
                                     const SchemaSkeleton& skeleton) {
  std::vector<CellDomain> domains;
  domains.reserve(ts.columns.size());
  for (const SkeletonColumn& col : ts.columns) {
    CellDomain d;
    if (col.is_key || col.pin_distinct) {
      d.positional = true;
    } else if (!col.relevant) {
      d.values.push_back(col.pinned);
    } else if (col.fk_table >= 0) {
      int ref = skeleton.IndexOf(col.fk_table);
      int64_t ref_rows = rows_so_far[static_cast<size_t>(ref)];
      for (int64_t i = 0; i < ref_rows; ++i) {
        d.values.push_back(TypedLabel(
            skeleton.tables[static_cast<size_t>(ref)]
                .schema.column(skeleton.tables[static_cast<size_t>(ref)]
                                   .key_column)
                .type,
            i));
      }
      if (bounds.with_null || d.values.empty()) {
        d.values.push_back(Value::Null());
      }
    } else {
      d.values = col.domain;
      if (bounds.with_null && col.nullable) d.values.push_back(Value::Null());
    }
    domains.push_back(std::move(d));
  }
  return domains;
}

/// Size of the per-row value-tuple space (product of candidate counts).
int64_t TupleSpace(const std::vector<CellDomain>& domains) {
  int64_t n = 1;
  for (const CellDomain& d : domains) {
    if (!d.positional) n *= static_cast<int64_t>(d.values.size());
  }
  return n;
}

/// Decodes tuple index `t` into row `row_pos` of a table (mixed radix, first
/// column least significant).
Row DecodeRow(const std::vector<CellDomain>& domains, int64_t t,
              int64_t row_pos, const TableSkeleton& ts) {
  Row row;
  row.reserve(domains.size());
  for (size_t c = 0; c < domains.size(); ++c) {
    const CellDomain& d = domains[c];
    if (d.positional) {
      row.push_back(TypedLabel(ts.schema.column(static_cast<int>(c)).type,
                               row_pos));
    } else {
      int64_t size = static_cast<int64_t>(d.values.size());
      row.push_back(d.values[static_cast<size_t>(t % size)]);
      t /= size;
    }
  }
  return row;
}

bool TableSatisfiesUniqueKeys(const TableSkeleton& ts, const Table& table) {
  for (const std::vector<int>& uk : ts.unique_keys) {
    std::set<Row> seen;
    for (const Row& row : table.rows()) {
      Row key;
      key.reserve(uk.size());
      for (int c : uk) key.push_back(row[static_cast<size_t>(c)]);
      if (!seen.insert(std::move(key)).second) return false;
    }
  }
  return true;
}

}  // namespace

BoundedDatabase CloneDatabase(const SchemaSkeleton& skeleton,
                              const BoundedDatabase& db) {
  BoundedDatabase out;
  out.tables.reserve(db.tables.size());
  for (size_t i = 0; i < db.tables.size(); ++i) {
    auto copy = std::make_shared<Table>(skeleton.tables[i].schema);
    if (db.tables[i]) {
      copy->Reserve(db.tables[i]->row_count());
      for (const Row& row : db.tables[i]->rows()) copy->AppendUnchecked(row);
    }
    out.tables.push_back(std::move(copy));
  }
  return out;
}

bool SatisfiesUniqueKeys(const SchemaSkeleton& skeleton,
                         const BoundedDatabase& db) {
  for (size_t i = 0; i < skeleton.tables.size(); ++i) {
    if (!db.tables[i]) continue;
    if (!TableSatisfiesUniqueKeys(skeleton.tables[i], *db.tables[i])) {
      return false;
    }
  }
  return true;
}

Result<int64_t> ForEachBoundedDatabase(const SchemaSkeleton& skeleton,
                                       const EnumerationBounds& bounds,
                                       const DatabaseCallback& fn) {
  const size_t n = skeleton.tables.size();
  std::vector<int64_t> rows_so_far(n, 0);
  std::vector<std::shared_ptr<Table>> chosen(n);
  int64_t visited = 0;
  bool stop = false;
  Status failure = Status::OK();

  // Recurse over tables in skeleton (FK-topological) order; at each level,
  // pick a row count and a non-decreasing sequence of row-tuple indices.
  std::function<void(size_t)> descend = [&](size_t level) {
    if (stop) return;
    if (level == n) {
      BoundedDatabase db;
      db.tables = chosen;
      ++visited;
      if (bounds.max_databases > 0 && visited > bounds.max_databases) {
        failure = Status::OutOfRange(
            "prover: enumeration exceeded max_databases = " +
            std::to_string(bounds.max_databases));
        stop = true;
        return;
      }
      Result<bool> keep_going = fn(db);
      if (!keep_going.ok()) {
        failure = keep_going.status();
        stop = true;
      } else if (!*keep_going) {
        stop = true;
      }
      return;
    }

    const TableSkeleton& ts = skeleton.tables[level];
    std::vector<CellDomain> domains =
        BuildDomains(ts, bounds, rows_so_far, skeleton);
    int64_t space = TupleSpace(domains);
    if (space > bounds.max_row_tuples) {
      failure = Status::OutOfRange(
          "prover: row-tuple space of '" + ts.name + "' is " +
          std::to_string(space) + " (> max_row_tuples = " +
          std::to_string(bounds.max_row_tuples) + ")");
      stop = true;
      return;
    }

    std::vector<int64_t> tuples;
    std::function<void(int, int64_t)> choose = [&](int remaining,
                                                   int64_t start) {
      if (stop) return;
      if (remaining == 0) {
        auto table = std::make_shared<Table>(ts.schema);
        table->Reserve(static_cast<int64_t>(tuples.size()));
        for (size_t r = 0; r < tuples.size(); ++r) {
          table->AppendUnchecked(
              DecodeRow(domains, tuples[r], static_cast<int64_t>(r), ts));
        }
        if (!TableSatisfiesUniqueKeys(ts, *table)) return;
        chosen[level] = std::move(table);
        rows_so_far[level] = static_cast<int64_t>(tuples.size());
        descend(level + 1);
        return;
      }
      for (int64_t t = start; t < space && !stop; ++t) {
        tuples.push_back(t);
        choose(remaining - 1, t);
        tuples.pop_back();
      }
    };
    for (int r = 0; r <= bounds.max_rows && !stop; ++r) {
      choose(r, 0);
    }
  };

  descend(0);
  if (!failure.ok()) return failure;
  return visited;
}

}  // namespace aggview
