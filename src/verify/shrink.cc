#include "verify/shrink.h"

#include <set>
#include <utility>
#include <vector>

namespace aggview {

namespace {

Value TypedLabel(DataType type, int64_t i) {
  switch (type) {
    case DataType::kInt64:
      return Value::Int(i);
    case DataType::kDouble:
      return Value::Real(static_cast<double>(i));
    case DataType::kString:
      return Value::Str("k" + std::to_string(i));
  }
  return Value::Int(i);
}

DataType KeyType(const SchemaSkeleton& skeleton, int table_idx) {
  const TableSkeleton& ts = skeleton.tables[static_cast<size_t>(table_idx)];
  return ts.schema.column(ts.key_column).type;
}

/// Old row index a foreign-key cell refers to, or -1 for NULL / no match.
int64_t ReferencedRow(const SchemaSkeleton& skeleton, int ref_idx,
                      const Value& cell, int64_t ref_rows) {
  if (cell.is_null()) return -1;
  DataType type = KeyType(skeleton, ref_idx);
  for (int64_t i = 0; i < ref_rows; ++i) {
    if (cell == TypedLabel(type, i)) return i;
  }
  return -1;
}

/// Collapse candidates for one cell, simplest first: the zero value, then
/// NULL, then the remaining domain ascending (for foreign keys: label 0,
/// NULL, then the remaining labels). A cell's rank is its position here;
/// collapse only ever moves a cell to a strictly lower rank.
std::vector<Value> CollapseCandidates(const SchemaSkeleton& skeleton,
                                      int table_idx, const SkeletonColumn& col,
                                      const BoundedDatabase& db) {
  std::vector<Value> out;
  if (col.fk_table >= 0) {
    int ref = skeleton.IndexOf(col.fk_table);
    int64_t ref_rows = db.tables[static_cast<size_t>(ref)]->row_count();
    DataType type = KeyType(skeleton, ref);
    if (ref_rows > 0) out.push_back(TypedLabel(type, 0));
    out.push_back(Value::Null());
    for (int64_t i = 1; i < ref_rows; ++i) out.push_back(TypedLabel(type, i));
    return out;
  }
  (void)table_idx;
  Value zero = col.type == DataType::kDouble ? Value::Real(0.0) : Value::Int(0);
  out.push_back(zero);
  if (col.nullable) out.push_back(Value::Null());
  for (const Value& v : col.domain) {
    if (v != zero) out.push_back(v);
  }
  return out;
}

int RankOf(const std::vector<Value>& candidates, const Value& v) {
  for (size_t i = 0; i < candidates.size(); ++i) {
    if ((candidates[i].is_null() && v.is_null()) ||
        (!candidates[i].is_null() && !v.is_null() && candidates[i] == v)) {
      return static_cast<int>(i);
    }
  }
  return static_cast<int>(candidates.size());
}

}  // namespace

BoundedDatabase RemoveRowCascade(const SchemaSkeleton& skeleton,
                                 const BoundedDatabase& db, int table_idx,
                                 int64_t row) {
  const size_t n = skeleton.tables.size();
  std::vector<std::set<int64_t>> removed(n);
  std::vector<std::pair<int, int64_t>> worklist;
  removed[static_cast<size_t>(table_idx)].insert(row);
  worklist.emplace_back(table_idx, row);

  while (!worklist.empty()) {
    auto [t, r] = worklist.back();
    worklist.pop_back();
    TableId victim_table = skeleton.tables[static_cast<size_t>(t)].table;
    Value victim_label = TypedLabel(KeyType(skeleton, t), r);
    for (size_t u = 0; u < n; ++u) {
      const TableSkeleton& ts = skeleton.tables[u];
      for (const SkeletonColumn& col : ts.columns) {
        if (col.fk_table != victim_table) continue;
        const Table& table = *db.tables[u];
        for (int64_t s = 0; s < table.row_count(); ++s) {
          const Value& cell = table.row(s)[static_cast<size_t>(col.index)];
          if (cell.is_null() || cell != victim_label) continue;
          if (removed[u].insert(s).second) {
            worklist.emplace_back(static_cast<int>(u), s);
          }
        }
      }
    }
  }

  // Survivor maps: old row index -> new canonical label.
  std::vector<std::vector<int64_t>> new_label(n);
  for (size_t t = 0; t < n; ++t) {
    const Table& table = *db.tables[t];
    new_label[t].assign(static_cast<size_t>(table.row_count()), -1);
    int64_t next = 0;
    for (int64_t r = 0; r < table.row_count(); ++r) {
      if (removed[t].count(r) == 0) new_label[t][static_cast<size_t>(r)] = next++;
    }
  }

  BoundedDatabase out;
  out.tables.reserve(n);
  for (size_t t = 0; t < n; ++t) {
    const TableSkeleton& ts = skeleton.tables[t];
    auto table = std::make_shared<Table>(ts.schema);
    const Table& old = *db.tables[t];
    for (int64_t r = 0; r < old.row_count(); ++r) {
      int64_t label = new_label[t][static_cast<size_t>(r)];
      if (label < 0) continue;
      Row row_out = old.row(r);
      for (const SkeletonColumn& col : ts.columns) {
        size_t c = static_cast<size_t>(col.index);
        if (col.is_key || col.pin_distinct) {
          row_out[c] = TypedLabel(ts.schema.column(col.index).type, label);
        } else if (col.fk_table >= 0 && !row_out[c].is_null()) {
          int ref = skeleton.IndexOf(col.fk_table);
          int64_t old_ref = ReferencedRow(
              skeleton, ref, row_out[c],
              db.tables[static_cast<size_t>(ref)]->row_count());
          if (old_ref >= 0) {
            row_out[c] = TypedLabel(KeyType(skeleton, ref),
                                    new_label[static_cast<size_t>(ref)]
                                             [static_cast<size_t>(old_ref)]);
          }
        }
      }
      table->AppendUnchecked(std::move(row_out));
    }
    out.tables.push_back(std::move(table));
  }
  return out;
}

Result<BoundedDatabase> ShrinkCounterexample(const SchemaSkeleton& skeleton,
                                             const BoundedDatabase& db,
                                             const RefutesFn& refutes,
                                             ShrinkStats* stats) {
  ShrinkStats local;
  ShrinkStats* st = stats != nullptr ? stats : &local;
  *st = ShrinkStats{};

  BoundedDatabase current = CloneDatabase(skeleton, db);
  const size_t n = skeleton.tables.size();

  auto consult = [&](const BoundedDatabase& candidate) -> Result<bool> {
    ++st->oracle_calls;
    return refutes(candidate);
  };

  bool changed = true;
  while (changed) {
    changed = false;

    // Pass 1: row removal (with FK cascade) to a fixpoint. After this pass
    // no single removal keeps the refutation — the 1-minimality invariant.
    bool removed_one = true;
    while (removed_one) {
      removed_one = false;
      for (size_t t = 0; t < n && !removed_one; ++t) {
        int64_t rows = current.tables[t]->row_count();
        for (int64_t r = 0; r < rows && !removed_one; ++r) {
          BoundedDatabase candidate =
              RemoveRowCascade(skeleton, current, static_cast<int>(t), r);
          Result<bool> still = consult(candidate);
          if (!still.ok()) return still.status();
          if (*still) {
            int64_t delta = current.total_rows() - candidate.total_rows();
            st->rows_removed += delta;
            current = std::move(candidate);
            removed_one = true;
            changed = true;
          }
        }
      }
    }

    // Pass 2: value collapse toward 0 / NULL, cheapest candidate first,
    // keeping the declared unique keys satisfied.
    for (size_t t = 0; t < n; ++t) {
      const TableSkeleton& ts = skeleton.tables[t];
      for (int64_t r = 0; r < current.tables[t]->row_count(); ++r) {
        for (const SkeletonColumn& col : ts.columns) {
          if (col.is_key || col.pin_distinct || !col.relevant) continue;
          size_t c = static_cast<size_t>(col.index);
          std::vector<Value> candidates =
              CollapseCandidates(skeleton, static_cast<int>(t), col, current);
          const Value& cell = current.tables[t]->row(r)[c];
          int rank = RankOf(candidates, cell);
          for (int i = 0; i < rank; ++i) {
            BoundedDatabase candidate = CloneDatabase(skeleton, current);
            // Rebuild the one row with the collapsed cell.
            Row row_out = candidate.tables[t]->row(r);
            row_out[c] = candidates[static_cast<size_t>(i)];
            auto table = std::make_shared<Table>(ts.schema);
            for (int64_t rr = 0; rr < candidate.tables[t]->row_count(); ++rr) {
              table->AppendUnchecked(rr == r ? row_out
                                             : candidate.tables[t]->row(rr));
            }
            candidate.tables[t] = std::move(table);
            if (!SatisfiesUniqueKeys(skeleton, candidate)) continue;
            Result<bool> still = consult(candidate);
            if (!still.ok()) return still.status();
            if (*still) {
              current = std::move(candidate);
              ++st->values_collapsed;
              changed = true;
              break;
            }
          }
        }
      }
    }
  }
  return current;
}

}  // namespace aggview
