#ifndef AGGVIEW_VERIFY_PROVER_H_
#define AGGVIEW_VERIFY_PROVER_H_

#include <functional>
#include <optional>
#include <string>

#include "catalog/catalog.h"
#include "exec/executor.h"
#include "optimizer/aggview_optimizer.h"
#include "verify/enumerate.h"
#include "verify/shrink.h"
#include "verify/skeleton.h"

namespace aggview {

/// Small-scope bounded model checking of plan equivalence. Two plans over
/// the same catalog are executed on *every* database within the enumeration
/// bounds (enumerate.h); equivalence holds on the small scope iff every
/// execution pair produces byte-identical result fingerprints. A refutation
/// is either diverging fingerprints or one side failing where the other
/// succeeds (an unsound rewrite can produce a structurally invalid plan —
/// that is a counterexample too, found on the empty database). The first
/// refuting database is shrunk (shrink.h) to a minimal counterexample and
/// rendered as a self-contained repro.

/// One side of the equivalence: a plan, the (rewritten) query it must be
/// interpreted against, and the execution context to run it under. Running
/// the *same* plan under two contexts checks execution-strategy equivalence
/// (the fuzzer's batch-size/thread-count divergence shrinking uses this).
struct ExecutionSpec {
  const Query* query = nullptr;
  PlanPtr plan;
  ExecContext ctx;
  std::string label;
};

struct ProverOptions {
  EnumerationBounds bounds;
  /// Shrink the first refuting database to a minimal counterexample.
  bool shrink = true;
  /// Directory to write the self-contained repro into on refutation; empty
  /// falls back to $AGGVIEW_PROVER_REPRO_DIR, and no file is written when
  /// both are unset. The file is named counterexample_<name>.sql.
  std::string repro_dir;
  /// Name of the proof obligation (labels logs and the repro file).
  std::string name = "proof";
  /// Invoked after each enumerated database is installed — including every
  /// shrink probe — before either side executes. Lets proofs whose plans
  /// read derived state (materialized-view backing tables) re-derive it for
  /// the installed database, e.g. RefreshMaterializedView per view; without
  /// this, a view-backed plan would be judged against backing content from
  /// a different database. A failure aborts the proof run with the hook's
  /// status. The catalog's base data is restored on return as usual, but
  /// derived state is left as the hook's last invocation produced it (the
  /// restore bumps the base-table epochs, so such views read as stale).
  std::function<Status(Catalog*)> post_install;
};

struct Counterexample {
  /// The minimized (or first, when shrinking is off) refuting database.
  BoundedDatabase db;
  /// Result fingerprint or "ERROR: <status>" per side.
  std::string pre_outcome;
  std::string post_outcome;
  /// Self-contained repro: CREATE TABLE + INSERT + both plans + outcomes.
  std::string repro;
  /// Path of the written repro file; empty when none was written.
  std::string repro_path;
  ShrinkStats shrink_stats;
};

struct ProofResult {
  /// True when every database within bounds produced agreeing outcomes.
  bool proved = false;
  int64_t databases_checked = 0;
  /// Databases where *both* sides failed (counted, not refuting: the plans
  /// agree that the input is outside their domain).
  int64_t agreeing_failures = 0;
  std::optional<Counterexample> counterexample;
};

/// Swaps enumerated data into the catalog's skeleton tables for the duration
/// of an execution and restores the original data (and stats) on destruction.
/// The prover owns the catalog exclusively while proving.
class DataSwapGuard {
 public:
  DataSwapGuard(Catalog* catalog, const SchemaSkeleton& skeleton);
  ~DataSwapGuard();

  DataSwapGuard(const DataSwapGuard&) = delete;
  DataSwapGuard& operator=(const DataSwapGuard&) = delete;

  /// Installs `db.tables[i]` as the data of skeleton table i.
  void Install(const BoundedDatabase& db);

 private:
  Catalog* catalog_;
  const SchemaSkeleton* skeleton_;
  std::vector<std::shared_ptr<Table>> saved_;
};

/// Core prover: enumerate, execute both specs, compare, shrink on mismatch.
/// `catalog` is mutated (data swapped) during the call and restored before
/// returning. An error return means the proof could not be *run* (e.g. the
/// skeleton is out of scope); a refutation is a successful return with
/// proved == false.
Result<ProofResult> ProveEquivalence(Catalog* catalog,
                                     const SchemaSkeleton& skeleton,
                                     const ExecutionSpec& pre,
                                     const ExecutionSpec& post,
                                     const ProverOptions& options);

/// The outcome of the SQL-level driver: the proof plus both optimized
/// queries (kept alive here because the proof's specs point into them).
struct SqlProof {
  ProofResult result;
  OptimizedQuery pre;
  OptimizedQuery post;
  SchemaSkeleton skeleton;
};

/// End-to-end driver: parse and bind `sql`, optimize under `pre_options`
/// and `post_options`, extract the skeleton from both rewritten queries and
/// the post-side transformation audit, and prove the two plans equivalent.
Result<SqlProof> ProveSqlTransformation(Catalog* catalog,
                                        const std::string& sql,
                                        const OptimizerOptions& pre_options,
                                        const OptimizerOptions& post_options,
                                        const ProverOptions& options);

/// Renders a self-contained textual repro of a counterexample database:
/// CREATE TABLE + INSERT statements, the two plans, and both outcomes.
std::string RenderCounterexampleRepro(const SchemaSkeleton& skeleton,
                                      const BoundedDatabase& db,
                                      const std::string& description,
                                      const std::string& pre_text,
                                      const std::string& post_text,
                                      const std::string& pre_outcome,
                                      const std::string& post_outcome);

}  // namespace aggview

#endif  // AGGVIEW_VERIFY_PROVER_H_
