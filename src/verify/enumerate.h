#ifndef AGGVIEW_VERIFY_ENUMERATE_H_
#define AGGVIEW_VERIFY_ENUMERATE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "storage/table.h"
#include "verify/skeleton.h"

namespace aggview {

/// Exhaustive enumeration of all databases over a schema skeleton within a
/// small-scope bound, up to isomorphism. Two prunings keep the state space
/// tractable without losing completeness:
///
///   * Canonical row labeling. Key (and foreign-key) values only flow through
///     equality, grouping, and the output (enforced by ExtractSkeleton), so
///     databases that differ only by renaming key values are isomorphic —
///     both plans produce identically renamed results. Keys are therefore
///     fixed to the row position 0..rows-1 instead of enumerated.
///
///   * Multiset canonicalization. With keys fixed to positions, two rows of
///     one table are interchangeable by swapping labels (foreign-key cells in
///     referencing tables range over all labels independently, so the swapped
///     database is also enumerated). Row contents are thus enumerated as
///     non-decreasing sequences over the per-row value-tuple space.
///
/// Databases violating a declared unique key are skipped: the declared
/// constraints are preconditions of the transformations' legality proofs.

struct EnumerationBounds {
  /// Per-table row counts range over 0..max_rows.
  int max_rows = 3;
  /// Include NULL in every nullable relevant column's domain.
  bool with_null = true;
  /// Abort with an error after visiting this many databases (0 = unlimited).
  int64_t max_databases = 0;
  /// Abort when one table's per-row value-tuple space exceeds this (guards
  /// against a skeleton with too many relevant columns).
  int64_t max_row_tuples = 4096;
};

/// One concrete small database; `tables` is aligned with
/// SchemaSkeleton::tables.
struct BoundedDatabase {
  std::vector<std::shared_ptr<Table>> tables;

  int64_t total_rows() const {
    int64_t n = 0;
    for (const std::shared_ptr<Table>& t : tables) {
      if (t) n += t->row_count();
    }
    return n;
  }
};

/// Deep copy (Table itself is move-only).
BoundedDatabase CloneDatabase(const SchemaSkeleton& skeleton,
                              const BoundedDatabase& db);

/// True when `db` satisfies every declared unique key of the skeleton
/// (NULL treated as an ordinary value: strict at-most-once semantics, the
/// reading under which the optimizer's key-based legality arguments hold).
bool SatisfiesUniqueKeys(const SchemaSkeleton& skeleton,
                         const BoundedDatabase& db);

/// Visits one database; return false to stop the enumeration early (e.g. a
/// counterexample was found), true to continue.
using DatabaseCallback = std::function<Result<bool>(const BoundedDatabase&)>;

/// Runs `fn` on every canonical database within `bounds`; returns the number
/// of databases visited. Deterministic: the order is a pure function of the
/// skeleton and bounds.
Result<int64_t> ForEachBoundedDatabase(const SchemaSkeleton& skeleton,
                                       const EnumerationBounds& bounds,
                                       const DatabaseCallback& fn);

}  // namespace aggview

#endif  // AGGVIEW_VERIFY_ENUMERATE_H_
