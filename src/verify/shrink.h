#ifndef AGGVIEW_VERIFY_SHRINK_H_
#define AGGVIEW_VERIFY_SHRINK_H_

#include <cstdint>
#include <functional>

#include "common/result.h"
#include "verify/enumerate.h"
#include "verify/skeleton.h"

namespace aggview {

/// Counterexample minimization: given a database on which the refutation
/// oracle fires, greedily (a) delete rows — cascading over foreign keys and
/// renumbering the canonical labels — and (b) collapse cell values toward 0
/// and NULL, as long as the oracle keeps firing and the declared unique keys
/// stay satisfied. The result is 1-minimal over row deletions: removing any
/// remaining row (with its cascade) makes the refutation disappear.
///
/// Termination: every accepted step strictly decreases (total rows, sum of
/// value ranks) lexicographically; both passes repeat to a fixpoint.
/// Determinism: candidate order is a pure function of the database.

/// True when the database still refutes the property under test.
using RefutesFn = std::function<Result<bool>(const BoundedDatabase&)>;

struct ShrinkStats {
  int64_t rows_removed = 0;
  int64_t values_collapsed = 0;
  int64_t oracle_calls = 0;
};

/// Removes row `row` of table `table_idx`, every row transitively
/// referencing it through a modeled foreign key, renumbers the remaining
/// canonical labels to 0..rows-1, and remaps surviving foreign-key cells.
/// Building block of the shrinker, exposed so tests can check 1-minimality.
BoundedDatabase RemoveRowCascade(const SchemaSkeleton& skeleton,
                                 const BoundedDatabase& db, int table_idx,
                                 int64_t row);

/// Shrinks `db` to a minimal refuting database. `db` itself must refute
/// (callers establish this before shrinking); the oracle is re-consulted
/// only for candidate databases.
Result<BoundedDatabase> ShrinkCounterexample(const SchemaSkeleton& skeleton,
                                             const BoundedDatabase& db,
                                             const RefutesFn& refutes,
                                             ShrinkStats* stats = nullptr);

}  // namespace aggview

#endif  // AGGVIEW_VERIFY_SHRINK_H_
