#include "verify/skeleton.h"

#include <algorithm>
#include <map>
#include <utility>

namespace aggview {

namespace {

/// Where a query-global column id lives: which catalog table, which schema
/// position. Aggregate outputs and rowids map to nothing.
struct ColumnSite {
  TableId table = -1;
  int index = -1;
};

/// All predicates of a query, across every block (view SPJ + HAVING, top
/// block + top HAVING).
std::vector<const Predicate*> AllPredicates(const Query& query) {
  std::vector<const Predicate*> out;
  auto add = [&out](const std::vector<Predicate>& preds) {
    out.reserve(out.size() + preds.size());
    for (const Predicate& p : preds) out.push_back(&p);
  };
  for (const AggView& view : query.views()) {
    add(view.spj.predicates);
    add(view.group_by.having);
  }
  add(query.predicates());
  if (query.top_group_by()) add(query.top_group_by()->having);
  return out;
}

/// All aggregate calls of a query, across every group-by.
std::vector<const AggregateCall*> AllAggregates(const Query& query) {
  std::vector<const AggregateCall*> out;
  for (const AggView& view : query.views()) {
    for (const AggregateCall& agg : view.group_by.aggregates) out.push_back(&agg);
  }
  if (query.top_group_by()) {
    for (const AggregateCall& agg : query.top_group_by()->aggregates) {
      out.push_back(&agg);
    }
  }
  return out;
}

Value DomainValue(DataType type, double v) {
  return type == DataType::kDouble ? Value::Real(v)
                                   : Value::Int(static_cast<int64_t>(v));
}

/// Inserts `v` (coerced to the column type) into the sorted domain.
void AddDomainValue(std::vector<Value>* domain, DataType type, const Value& v) {
  if (v.is_null() || v.is_string()) return;
  Value coerced = type == DataType::kDouble ? Value::Real(v.AsNumeric())
                                            : Value::Int(static_cast<int64_t>(
                                                  v.AsNumeric()));
  for (const Value& existing : *domain) {
    if (existing == coerced) return;
  }
  domain->push_back(coerced);
}

}  // namespace

int SchemaSkeleton::IndexOf(TableId id) const {
  for (size_t i = 0; i < tables.size(); ++i) {
    if (tables[i].table == id) return static_cast<int>(i);
  }
  return -1;
}

Result<SchemaSkeleton> ExtractSkeleton(
    const Catalog& catalog, const std::vector<SkeletonSource>& sources) {
  if (sources.empty()) {
    return Status::InvalidArgument("skeleton extraction needs a query");
  }
  for (const SkeletonSource& source : sources) {
    if (source.query == nullptr) {
      return Status::InvalidArgument("null query in skeleton source");
    }
  }

  // 1. The tables: every catalog table some range variable scans.
  std::set<TableId> table_set;
  for (const SkeletonSource& source : sources) {
    const Query& q = *source.query;
    for (int rv = 0; rv < q.num_range_vars(); ++rv) {
      table_set.insert(q.range_var(rv).table);
    }
  }

  // 2. Per-table key column (single-column primary key) and unique keys.
  std::map<TableId, int> key_column;
  for (TableId t : table_set) {
    const TableDef& def = catalog.table(t);
    if (def.primary_key.size() > 1) {
      return Status::Unimplemented("prover: composite primary key on table '" +
                                 def.name + "'");
    }
    key_column[t] = def.primary_key.empty() ? -1 : def.primary_key[0];
  }

  // 3. Resolve foreign keys the enumeration must model: single referencing
  // column onto the referenced table's key column, both tables in scope.
  // fk[(table, column)] = referenced table.
  std::map<std::pair<TableId, int>, TableId> fk;
  for (const ForeignKey& f : catalog.foreign_keys()) {
    if (table_set.count(f.referencing_table) == 0) continue;
    if (table_set.count(f.referenced_table) == 0) continue;
    if (f.referencing_columns.size() != 1) {
      return Status::Unimplemented(
          "prover: composite foreign key on table '" +
          catalog.table(f.referencing_table).name + "'");
    }
    if (f.referenced_columns.size() != 1 ||
        f.referenced_columns[0] != key_column[f.referenced_table]) {
      return Status::Unimplemented(
          "prover: foreign key not referencing the primary key of '" +
          catalog.table(f.referenced_table).name + "'");
    }
    fk[{f.referencing_table, f.referencing_columns[0]}] = f.referenced_table;
  }

  // 4. Map every query-global column id to its (table, schema index) site.
  // One map per source; column id spaces are per-query.
  std::vector<std::map<ColId, ColumnSite>> sites(sources.size());
  for (size_t s = 0; s < sources.size(); ++s) {
    const Query& q = *sources[s].query;
    for (int rv = 0; rv < q.num_range_vars(); ++rv) {
      const RangeVar& var = q.range_var(rv);
      for (size_t i = 0; i < var.columns.size(); ++i) {
        sites[s][var.columns[i]] = ColumnSite{var.table, static_cast<int>(i)};
      }
    }
  }

  // 5. Relevance: every base column some predicate, grouping list, aggregate
  // argument, select list, order key, or certificate claim mentions.
  std::set<std::pair<TableId, int>> relevant;
  auto mark = [&](size_t s, ColId col) {
    auto it = sites[s].find(col);
    if (it != sites[s].end()) relevant.insert({it->second.table, it->second.index});
  };
  for (size_t s = 0; s < sources.size(); ++s) {
    const Query& q = *sources[s].query;
    for (const Predicate* p : AllPredicates(q)) {
      for (ColId c : p->Columns()) mark(s, c);
    }
    for (const AggView& view : q.views()) {
      for (ColId c : view.group_by.grouping) mark(s, c);
    }
    if (q.top_group_by()) {
      for (ColId c : q.top_group_by()->grouping) mark(s, c);
    }
    for (const AggregateCall* agg : AllAggregates(q)) {
      for (ColId c : agg->args) mark(s, c);
    }
    for (ColId c : q.select_list()) mark(s, c);
    for (const OrderKey& k : q.order_by()) mark(s, k.column);
    for (ColId c : sources[s].extra_columns) mark(s, c);
  }

  // 6. Key opacity. Canonical row labeling (enumerate.h) is only complete
  // when key and foreign-key values act as opaque labels: they may flow
  // through equalities within one label space, grouping, COUNT, and the
  // output, but never through literal comparisons, order comparisons,
  // arithmetic aggregates, or equalities against a plain column or a label
  // of a different space — those distinguish labelings the pruning
  // identifies. A column's label space is the table whose row labels its
  // values draw from: its own table for a key, the referenced table for a
  // foreign key; -1 for plain columns.
  auto label_space = [&](size_t s, ColId col) -> TableId {
    auto it = sites[s].find(col);
    if (it == sites[s].end()) return -1;
    if (key_column[it->second.table] == it->second.index) {
      return it->second.table;
    }
    auto f = fk.find({it->second.table, it->second.index});
    return f != fk.end() ? f->second : -1;
  };
  auto is_label_column = [&](size_t s, ColId col) {
    return label_space(s, col) >= 0;
  };
  for (size_t s = 0; s < sources.size(); ++s) {
    const Query& q = *sources[s].query;
    for (const Predicate* p : AllPredicates(q)) {
      ColId a = kInvalidColId;
      ColId b = kInvalidColId;
      if (p->AsColumnEquality(&a, &b)) {
        if (label_space(s, a) == label_space(s, b)) continue;
        return Status::Unimplemented(
            "prover: equality between columns of different label spaces "
            "(breaks canonical row labeling): " +
            p->ToString(q.columns()));
      }
      for (ColId c : p->Columns()) {
        if (is_label_column(s, c)) {
          return Status::Unimplemented(
              "prover: key/foreign-key column '" + q.columns().name(c) +
              "' used outside column-column equality (breaks canonical row "
              "labeling): " +
              p->ToString(q.columns()));
        }
      }
    }
    for (const AggregateCall* agg : AllAggregates(q)) {
      if (agg->kind == AggKind::kCount || agg->kind == AggKind::kCountStar ||
          agg->kind == AggKind::kCountSum) {
        continue;  // counting only observes non-null-ness; labels stay opaque
      }
      for (ColId c : agg->args) {
        if (is_label_column(s, c)) {
          return Status::Unimplemented(
              "prover: key/foreign-key column '" + q.columns().name(c) +
              "' used as a " + AggKindName(agg->kind) +
              " argument (breaks canonical row labeling)");
        }
      }
    }
  }

  // 7. Assemble per-table skeletons.
  SchemaSkeleton skeleton;
  for (TableId t : table_set) {
    const TableDef& def = catalog.table(t);
    TableSkeleton ts;
    ts.table = t;
    ts.name = def.name;
    ts.schema = def.schema;
    ts.key_column = key_column[t];
    if (ts.key_column >= 0) ts.unique_keys.push_back({ts.key_column});
    for (const std::vector<int>& uk : def.unique_keys) ts.unique_keys.push_back(uk);

    std::set<int> unique_members;
    for (const std::vector<int>& uk : ts.unique_keys) {
      unique_members.insert(uk.begin(), uk.end());
    }

    for (int i = 0; i < def.schema.num_columns(); ++i) {
      const ColumnSpec& spec = def.schema.column(i);
      SkeletonColumn col;
      col.index = i;
      col.name = spec.name;
      col.type = spec.type;
      col.relevant = relevant.count({t, i}) > 0;
      col.is_key = (i == ts.key_column);
      auto fk_it = fk.find({t, i});
      if (fk_it != fk.end()) col.fk_table = fk_it->second;

      if (col.is_key) {
        col.nullable = false;  // labels, assigned 0..rows-1
      } else if (!col.relevant) {
        // Pinned. Foreign keys pin to NULL so the pin can never dangle;
        // unique-key members pin to per-row distinct values.
        if (col.fk_table >= 0) {
          col.pinned = Value::Null();
        } else if (unique_members.count(i) > 0) {
          col.pin_distinct = true;
        } else {
          switch (spec.type) {
            case DataType::kInt64:
              col.pinned = Value::Int(0);
              break;
            case DataType::kDouble:
              col.pinned = Value::Real(0.0);
              break;
            case DataType::kString:
              col.pinned = Value::Str("");
              break;
          }
        }
      } else if (col.fk_table >= 0) {
        col.nullable = true;  // values drawn from referenced labels at runtime
      } else {
        if (spec.type == DataType::kString) {
          return Status::Unimplemented("prover: relevant string column '" +
                                     def.name + "." + spec.name + "'");
        }
        col.nullable = true;
        col.domain.push_back(DomainValue(spec.type, 0.0));
        col.domain.push_back(DomainValue(spec.type, 1.0));
      }
      ts.columns.push_back(std::move(col));
    }
    skeleton.tables.push_back(std::move(ts));
  }

  // 8. Literal boundary values: every literal a query compares a relevant
  // plain column against joins that column's domain (with +/-1 neighbours
  // for inequalities, so both sides of the boundary are populated).
  for (size_t s = 0; s < sources.size(); ++s) {
    const Query& q = *sources[s].query;
    for (const Predicate* p : AllPredicates(q)) {
      ColId col = kInvalidColId;
      CompareOp op = CompareOp::kEq;
      Value literal;
      if (!p->AsColumnVsLiteral(&col, &op, &literal)) continue;
      auto it = sites[s].find(col);
      if (it == sites[s].end()) continue;  // e.g. HAVING on an agg output
      int ti = skeleton.IndexOf(it->second.table);
      SkeletonColumn& sc =
          skeleton.tables[static_cast<size_t>(ti)].columns[static_cast<size_t>(
              it->second.index)];
      if (!sc.relevant || sc.is_key || sc.fk_table >= 0) continue;
      AddDomainValue(&sc.domain, sc.type, literal);
      if (op != CompareOp::kEq && op != CompareOp::kNe && !literal.is_null() &&
          !literal.is_string()) {
        AddDomainValue(&sc.domain, sc.type,
                       DomainValue(sc.type, literal.AsNumeric() - 1.0));
        AddDomainValue(&sc.domain, sc.type,
                       DomainValue(sc.type, literal.AsNumeric() + 1.0));
      }
    }
  }
  for (TableSkeleton& ts : skeleton.tables) {
    for (SkeletonColumn& col : ts.columns) {
      std::sort(col.domain.begin(), col.domain.end());
      if (static_cast<int>(col.domain.size()) > kMaxDomainValues) {
        return Status::Unimplemented("prover: domain of '" + ts.name + "." +
                                   col.name + "' exceeds " +
                                   std::to_string(kMaxDomainValues) +
                                   " values");
      }
    }
  }

  // 9. Topological order: referenced tables before referencers, so the
  // enumeration knows the referenced row count when drawing FK values.
  std::vector<TableSkeleton> ordered;
  std::set<TableId> placed;
  while (ordered.size() < skeleton.tables.size()) {
    bool progressed = false;
    for (TableSkeleton& ts : skeleton.tables) {
      if (placed.count(ts.table) > 0) continue;
      bool ready = true;
      for (const SkeletonColumn& col : ts.columns) {
        if (col.fk_table >= 0 && col.fk_table != ts.table &&
            placed.count(col.fk_table) == 0) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      // Self-referencing FKs are out of scope: labels would constrain the
      // very rows being enumerated.
      for (const SkeletonColumn& col : ts.columns) {
        if (col.fk_table == ts.table && (col.relevant || col.is_key)) {
          return Status::Unimplemented("prover: self-referencing foreign key on '" +
                                     ts.name + "'");
        }
      }
      placed.insert(ts.table);
      ordered.push_back(std::move(ts));
      progressed = true;
    }
    if (!progressed) {
      return Status::Unimplemented("prover: foreign-key cycle among tables");
    }
  }
  skeleton.tables = std::move(ordered);
  return skeleton;
}

}  // namespace aggview
