#ifndef AGGVIEW_SESSION_H_
#define AGGVIEW_SESSION_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/exec_context.h"
#include "exec/executor.h"
#include "optimizer/aggview_optimizer.h"

namespace aggview {

class Session;
class ThreadPool;

/// Session-wide knobs; each PreparedQuery inherits them at Sql() time.
struct SessionOptions {
  /// Intra-query parallelism for every query this session executes. The
  /// session owns one worker pool sized to this, shared across queries.
  int threads = 1;
  /// Batch capacity of every operator tree the session runs.
  int batch_size = kDefaultBatchSize;
  /// Execution backend for every query this session runs: the Volcano batch
  /// interpreter, or the compiling backend (bytecode predicates + fused
  /// pipeline kernels, falling back per-operator where uncovered).
  ExecBackend backend = ExecBackend::kInterpret;
  /// Optimize with the traditional two-phase optimizer instead of the
  /// paper's aggregate-view optimizer (for comparisons).
  bool use_traditional = false;
  /// Answer queries from fresh materialized views when one matches
  /// (view/rewriter.h), before either optimizer runs. Off disables the
  /// rewriter entirely; view maintenance and REFRESH are unaffected.
  bool use_materialized_views = true;
  /// How hard lowering statically checks each compiled bytecode program
  /// before it may execute (exec/compile/verifier.h); only the compiled
  /// backend runs bytecode. AGGVIEW_VERIFY_BYTECODE overrides the default.
  BytecodeVerifyMode bytecode_verify = BytecodeVerifyMode::kOn;
  /// Options of the aggregate-view optimizer (ignored by use_traditional).
  OptimizerOptions optimizer;

  /// Serial, default batch size, interpreting backend — unless the
  /// environment overrides them (AGGVIEW_TEST_THREADS /
  /// AGGVIEW_TEST_BATCH_SIZE / AGGVIEW_TEST_BACKEND /
  /// AGGVIEW_VERIFY_BYTECODE via ExecDefaults::FromEnv(), the same knobs
  /// ExecContext::Default() reads).
  static SessionOptions Default();
};

/// A parsed, bound and optimized statement, ready to run. Produced by
/// Session::Sql; holds the rewritten query and the winning plan, so the
/// (comparatively expensive) optimization runs once however often the
/// statement executes. It executes against the session's catalog data and
/// worker pool, and guards that lifetime explicitly: Execute() on a query
/// whose Session has been destroyed, or on a moved-from query, returns a
/// clear error Status instead of dereferencing a dangling pointer.
class PreparedQuery {
 public:
  PreparedQuery(PreparedQuery&&) = default;
  PreparedQuery& operator=(PreparedQuery&&) = default;

  /// Runs the plan on the session's pool/threads and materializes the
  /// result. Page charges of the run are available from last_io_pages()
  /// afterwards.
  Result<QueryResult> Execute();

  /// The optimizer's one-line rationale plus the physical plan tree.
  std::string Explain() const;

  /// Runs the plan instrumented and renders the plan tree annotated with
  /// actual cardinalities, timings, IO and worker counts. Under the compiled
  /// backend, interpreted operators additionally show `fallback=<reason>`.
  /// `verbose` appends one section per compiled bytecode program: source
  /// predicate, verification verdict, and the full disassembly.
  Result<std::string> ExplainAnalyze(bool verbose = false);

  /// Certificates of the optimizer's transformations, the view rewriter's
  /// matches, and (after an Execute / ExplainAnalyze under the compiled
  /// backend) one CompilationCertificate per compiled bytecode program of
  /// the most recent lowering.
  const TransformationAudit& audit() const { return optimized_.audit; }

  const PlanPtr& plan() const { return optimized_.plan; }
  const Query& query() const { return optimized_.query; }
  const std::string& description() const { return optimized_.description; }
  /// Every W-assignment alternative the optimizer evaluated.
  const std::vector<PlanAlternative>& alternatives() const {
    return optimized_.alternatives;
  }
  /// Pages (reads + writes) charged by the most recent Execute /
  /// ExplainAnalyze, -1 before the first run.
  int64_t last_io_pages() const { return last_io_pages_; }
  /// The execution backend this query runs under (inherited from the
  /// session's options at Sql() time).
  ExecBackend backend() const { return backend_; }

 private:
  friend class Session;
  PreparedQuery(std::shared_ptr<Session*> session, OptimizedQuery optimized,
                ExecBackend backend)
      : session_(std::move(session)),
        optimized_(std::move(optimized)),
        backend_(backend) {}

  /// Resolves the owning Session, or an error when this query was moved
  /// from or the Session has been destroyed.
  Result<Session*> session() const;

  /// Generation token shared with the Session: the Session's destructor
  /// nulls the pointee, a move nulls the shared_ptr itself, and both states
  /// surface as error Statuses from session().
  std::shared_ptr<Session*> session_;
  OptimizedQuery optimized_;
  ExecBackend backend_ = ExecBackend::kInterpret;
  int64_t last_io_pages_ = -1;
};

/// The library's front door: one object owning the catalog (schemas + data),
/// the optimizer configuration, and the worker pool for parallel execution.
///
///   Session session(SessionOptions{.threads = 8});
///   CreateEmpDeptSchema(&session.catalog());
///   GenerateEmpDeptData(&session.catalog(), ...);
///   AGGVIEW_ASSIGN_OR_RETURN(PreparedQuery q, session.Sql("SELECT ..."));
///   AGGVIEW_ASSIGN_OR_RETURN(QueryResult result, q.Execute());
///
/// Sql() runs parse → bind → optimize; the returned PreparedQuery executes
/// any number of times. A Session is single-threaded at its surface (one
/// statement at a time) — the parallelism is *inside* an Execute call.
class Session {
 public:
  explicit Session(SessionOptions options = SessionOptions::Default());
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The session's schema + data; populate it before Sql().
  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  const SessionOptions& options() const { return options_; }

  /// Switches which optimizer subsequent Sql() calls use (already-prepared
  /// queries are unaffected).
  void set_use_traditional(bool on) { options_.use_traditional = on; }

  /// Parses, binds and optimizes one SELECT statement. When materialized
  /// views are enabled (SessionOptions::use_materialized_views) and a fresh
  /// view matches, the query is rewritten to scan the view's backing table
  /// first; the rewrite's certificates land in the prepared query's audit.
  Result<PreparedQuery> Sql(const std::string& text);

  /// Runs one materialized-view DDL statement (`CREATE MATERIALIZED VIEW
  /// name [(cols)] AS select` or `REFRESH MATERIALIZED VIEW name`) against
  /// this session's catalog, returning a one-line confirmation.
  Result<std::string> ExecuteDdl(const std::string& text);

  /// The execution context queries of this session run under (threads,
  /// batch size, shared pool), without IO or stats sinks installed.
  ExecContext MakeContext();

 private:
  /// The shared worker pool, created on first parallel use.
  ThreadPool* pool();

  SessionOptions options_;
  Catalog catalog_;
  std::unique_ptr<ThreadPool> pool_;
  /// Lifetime token handed to every PreparedQuery; ~Session nulls the
  /// pointee so outstanding queries fail their Execute with a clear error
  /// instead of a use-after-free.
  std::shared_ptr<Session*> self_;
};

}  // namespace aggview

#endif  // AGGVIEW_SESSION_H_
