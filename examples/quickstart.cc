// Quickstart: define a schema, load data, run a SQL query with aggregate
// views through the cost-based optimizer, and execute the plan.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "aggview.h"

using namespace aggview;

int main() {
  // 1. Schema: the paper's running example — emp(eno, dno, sal, age) and
  //    dept(dno, budget), with emp.dno a foreign key into dept.
  Catalog catalog;
  auto tables = CreateEmpDeptSchema(&catalog);
  if (!tables.ok()) {
    std::fprintf(stderr, "%s\n", tables.status().ToString().c_str());
    return 1;
  }

  // 2. Data: synthetic, deterministic. 20000 employees in 800 departments.
  EmpDeptOptions data;
  data.num_employees = 20'000;
  data.num_departments = 800;
  Status st = GenerateEmpDeptData(&catalog, *tables, data);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 3. A multi-block query: employees under 22 earning more than their
  //    department's average salary (the paper's Example 1).
  const std::string sql = R"sql(
create view a1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, a1 b
where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal
)sql";

  auto query = ParseAndBind(catalog, sql);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("canonical form:\n%s\n", query->ToString().c_str());

  // 4. Optimize with the paper's algorithm (pull-up + push-down + the
  //    System-R style enumerator).
  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  if (!optimized.ok()) {
    std::fprintf(stderr, "%s\n", optimized.status().ToString().c_str());
    return 1;
  }
  std::printf("chosen alternative: %s\nestimated IO: %.1f pages\n\nplan:\n%s\n",
              optimized->description.c_str(), optimized->plan->cost,
              PlanToString(optimized->plan, optimized->query).c_str());

  // 5. Execute and measure.
  IoAccountant io;
  auto result = ExecutePlan(optimized->plan, optimized->query, &io);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("result rows: %zu, measured IO: %lld pages\n",
              result->rows.size(), static_cast<long long>(io.total()));
  for (size_t i = 0; i < std::min<size_t>(result->rows.size(), 5); ++i) {
    std::printf("  %s\n", result->rows[i][0].ToString().c_str());
  }
  return 0;
}
