// Quickstart: open a Session, define a schema, load data, and run a SQL
// query with aggregate views through the cost-based optimizer — in parallel.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "aggview.h"

using namespace aggview;

int main() {
  // 1. A session owns the catalog, the optimizer configuration and the
  //    worker pool. threads = 4 runs every query's scans, hash joins and
  //    aggregations morsel-parallel on 4 pipeline instances; the results
  //    are identical to threads = 1.
  SessionOptions options;
  options.threads = 4;
  Session session(options);

  // 2. Schema: the paper's running example — emp(eno, dno, sal, age) and
  //    dept(dno, budget), with emp.dno a foreign key into dept.
  auto tables = CreateEmpDeptSchema(&session.catalog());
  if (!tables.ok()) {
    std::fprintf(stderr, "%s\n", tables.status().ToString().c_str());
    return 1;
  }

  // 3. Data: synthetic, deterministic. 20000 employees in 800 departments.
  EmpDeptOptions data;
  data.num_employees = 20'000;
  data.num_departments = 800;
  Status st = GenerateEmpDeptData(&session.catalog(), *tables, data);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 4. A multi-block query: employees under 22 earning more than their
  //    department's average salary (the paper's Example 1). Sql() parses,
  //    binds and optimizes with the paper's algorithm (pull-up + push-down
  //    + the System-R style enumerator).
  const std::string sql = R"sql(
create view a1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, a1 b
where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal
)sql";

  auto prepared = session.Sql(sql);
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("estimated IO: %.1f pages\n\n%s\n", prepared->plan()->cost,
              prepared->Explain().c_str());

  // 5. Execute and measure. The charged IO pages are independent of the
  //    session's thread count — parallelism changes wall time, not the
  //    simulated IO.
  auto result = prepared->Execute();
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("result rows: %zu, measured IO: %lld pages\n",
              result->rows.size(),
              static_cast<long long>(prepared->last_io_pages()));
  for (size_t i = 0; i < std::min<size_t>(result->rows.size(), 5); ++i) {
    std::printf("  %s\n", result->rows[i][0].ToString().c_str());
  }

  // 6. EXPLAIN ANALYZE: re-run instrumented; parallel regions show their
  //    worker count per operator.
  auto analyzed = prepared->ExplainAnalyze();
  if (!analyzed.ok()) {
    std::fprintf(stderr, "%s\n", analyzed.status().ToString().c_str());
    return 1;
  }
  std::printf("\nEXPLAIN ANALYZE:\n%s", analyzed->c_str());
  return 0;
}
