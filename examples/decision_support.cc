// Decision support on TPC-D style data (the paper's Section 1 motivation):
// runs the Q15-style revenue view query and the two-view customer profile
// end-to-end, comparing the traditional and extended optimizers.
#include <cstdio>

#include "aggview.h"

using namespace aggview;

int main() {
  Catalog catalog;
  auto tables = CreateTpcdSchema(&catalog);
  if (!tables.ok()) return 1;
  DbgenOptions options;
  options.scale_factor = 0.005;
  if (!GenerateTpcdData(&catalog, *tables, options).ok()) return 1;

  std::printf("TPC-D style database at SF %.3f:\n", options.scale_factor);
  for (const char* name :
       {"supplier", "customer", "part", "orders", "lineitem"}) {
    auto id = catalog.FindTable(name);
    std::printf("  %-10s %8lld rows\n", name,
                static_cast<long long>(catalog.table(*id).stats.row_count));
  }

  for (const auto& named : tpcd_queries::AllQueries()) {
    std::printf("\n=== %s ===\n", named.name.c_str());
    auto query = ParseAndBind(catalog, named.sql);
    if (!query.ok()) {
      std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
      return 1;
    }
    auto traditional = OptimizeTraditional(*query);
    auto extended = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
    if (!traditional.ok() || !extended.ok()) return 1;

    IoAccountant io_t, io_e;
    auto rt = ExecutePlan(traditional->plan, traditional->query,
                           ExecContext::Default().WithIo(&io_t));
    auto re = ExecutePlan(extended->plan, extended->query,
                          ExecContext::Default().WithIo(&io_e));
    if (!rt.ok() || !re.ok()) return 1;

    std::printf("traditional: est %8.1f  measured %6lld IO\n",
                traditional->plan->cost, static_cast<long long>(io_t.total()));
    std::printf("extended:    est %8.1f  measured %6lld IO   (%s)\n",
                extended->plan->cost, static_cast<long long>(io_e.total()),
                extended->description.c_str());
    std::printf("rows: %zu, results agree: %s\n", re->rows.size(),
                rt->Fingerprint() == re->Fingerprint() ? "yes" : "NO");
  }
  return 0;
}
