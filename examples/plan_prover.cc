// plan_prover: small-scope bounded model checking of an optimizer rewrite
// from the command line. Takes a SQL query (emp/dept schema), optimizes it
// with the traditional and the aggregate-view optimizer, and executes both
// plans on EVERY database within the scope bound — rows 0..N per table,
// column domains {NULL, 0, 1} plus the query's own literals — reporting
// either a proof at the bound or a minimized counterexample database.
//
//   plan_prover ["<sql>"] [max_rows] [repro_dir]
//
// With no arguments, proves the paper's Example 2 at rows <= 3.
#include <cstdio>
#include <cstdlib>

#include "aggview.h"

using namespace aggview;

int main(int argc, char** argv) {
  std::string sql = R"sql(
select e.dno, avg(e.sal)
from emp e, dept d
where e.dno = d.dno and d.budget < 1
group by e.dno
)sql";
  if (argc > 1) sql = argv[1];

  Catalog catalog;
  auto tables = CreateEmpDeptSchema(&catalog);
  if (!tables.ok()) return 1;
  // Representative data: the optimizer costs plans against these statistics;
  // the prover then swaps enumerated small databases in underneath.
  if (!GenerateEmpDeptData(&catalog, *tables, {}).ok()) return 1;

  ProverOptions options;
  options.name = "plan_prover";
  if (argc > 2) options.bounds.max_rows = std::atoi(argv[2]);
  if (argc > 3) options.repro_dir = argv[3];

  auto proof = ProveSqlTransformation(&catalog, sql, TraditionalOptions(),
                                      OptimizerOptions{}, options);
  if (!proof.ok()) {
    std::fprintf(stderr, "prover error: %s\n", proof.status().ToString().c_str());
    return 2;
  }

  std::printf("pre : %s\n", proof->pre.description.c_str());
  std::printf("post: %s\n", proof->post.description.c_str());
  std::printf("scope: rows 0..%d per table, %lld database(s) checked\n",
              options.bounds.max_rows,
              static_cast<long long>(proof->result.databases_checked));
  if (proof->result.agreeing_failures > 0) {
    std::printf("agreeing failures (both plans rejected the database): %lld\n",
                static_cast<long long>(proof->result.agreeing_failures));
  }

  if (proof->result.proved) {
    std::printf("PROVED: plans agree on every database within the bound\n");
    return 0;
  }

  const Counterexample& cx = *proof->result.counterexample;
  std::printf("REFUTED: minimized counterexample (%lld row(s))\n",
              static_cast<long long>(cx.db.total_rows()));
  std::printf("  shrink: %lld row(s) removed, %lld value(s) collapsed, "
              "%lld oracle call(s)\n",
              static_cast<long long>(cx.shrink_stats.rows_removed),
              static_cast<long long>(cx.shrink_stats.values_collapsed),
              static_cast<long long>(cx.shrink_stats.oracle_calls));
  if (!cx.repro_path.empty()) {
    std::printf("  repro written to %s\n", cx.repro_path.c_str());
  }
  std::printf("\n%s", cx.repro.c_str());
  return 3;
}
