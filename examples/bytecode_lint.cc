// bytecode_lint: static verification of the compiled backend's bytecode from
// the command line. Takes a SQL query (emp/dept schema), lowers it under
// ExecBackend::kCompiled with the bytecode verifier enabled, and prints every
// compilation certificate — source rendering, instruction counts, witness
// rows, and the full disassembly; rejected programs print their
// instruction-indexed diagnostic instead. The exit code is the number of
// rejected programs, so the tool doubles as a CI gate.
//
//   bytecode_lint ["<sql>"] [on|paranoid]
//
// With no arguments, lints the paper's Example 1 in paranoid mode (every
// certificate is re-proved by recompiling the source and requiring a
// byte-identical listing).
#include <cstdio>
#include <cstring>
#include <string>

#include "aggview.h"

using namespace aggview;

int main(int argc, char** argv) {
  std::string sql = R"sql(
create view a1 (dno, asal) as
  select e.dno, avg(e.sal) from emp e where e.age < 22 group by e.dno;
select d.dno, d.budget, a1.asal
from dept d, a1
where d.dno = a1.dno and d.budget < 1000000 and a1.asal > 50
)sql";
  if (argc > 1) sql = argv[1];

  SessionOptions options;
  options.backend = ExecBackend::kCompiled;
  options.bytecode_verify = BytecodeVerifyMode::kParanoid;
  if (argc > 2) {
    if (!ParseBytecodeVerifyMode(argv[2], &options.bytecode_verify) ||
        options.bytecode_verify == BytecodeVerifyMode::kOff) {
      std::fprintf(stderr, "usage: bytecode_lint [\"<sql>\"] [on|paranoid]\n");
      return 64;  // EX_USAGE
    }
  }

  Session session(options);
  auto tables = CreateEmpDeptSchema(&session.catalog());
  if (!tables.ok()) return 65;
  if (!GenerateEmpDeptData(&session.catalog(), *tables, {}).ok()) return 65;

  auto query = session.Sql(sql);
  if (!query.ok()) {
    std::fprintf(stderr, "error: %s\n", query.status().ToString().c_str());
    return 65;  // EX_DATAERR
  }
  // Executing lowers the plan, which compiles, verifies, and certifies every
  // bytecode program (rejected ones fall back to the interpreter, so the
  // query itself always answers).
  auto result = query->Execute();
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 65;
  }

  std::printf("mode: %s\n",
              BytecodeVerifyModeName(options.bytecode_verify));
  const auto& certs = query->audit().compilations;
  if (certs.empty()) {
    std::printf("no programs compiled (plan lowered without bytecode)\n");
    return 0;
  }

  int rejected = 0;
  for (const CompilationCertificate& cert : certs) {
    std::printf("\n[%s/%s] %s\n", cert.node.c_str(), cert.kind.c_str(),
                cert.source.c_str());
    if (cert.verified) {
      std::printf("  verified: %d instruction(s), max stack depth %d, "
                  "%d witness row(s)\n",
                  cert.instructions, cert.max_stack_depth, cert.witness_rows);
      // Indent the listing two spaces, one instruction per line.
      std::string line;
      for (char c : cert.disassembly) {
        if (c == '\n') {
          std::printf("  %s\n", line.c_str());
          line.clear();
        } else {
          line += c;
        }
      }
      if (!line.empty()) std::printf("  %s\n", line.c_str());
    } else {
      ++rejected;
      std::printf("  REJECTED: %s\n", cert.rejection.c_str());
    }
  }
  std::printf("\n%zu program(s), %d rejected\n", certs.size(), rejected);
  return rejected;
}
