// Nested subqueries via Kim-style flattening (paper Section 1).
//
// "using Kim's transformation, the result of optimizing queries containing
// aggregate views can be used for optimizing an important class of queries
// with correlated nested subqueries."
//
// The correlated query
//
//   SELECT e1.sal FROM emp e1
//   WHERE e1.age < 22
//     AND e1.sal > (SELECT AVG(e2.sal) FROM emp e2 WHERE e2.dno = e1.dno)
//
// flattens into exactly the paper's Example 1: a join between emp and the
// aggregate view A1(dno, asal). This example performs the flattening
// explicitly, optimizes both the flattened form and the pulled-up single
// block, and shows they return the same rows.
#include <cstdio>

#include "aggview.h"

using namespace aggview;

int main() {
  Catalog catalog;
  auto tables = CreateEmpDeptSchema(&catalog);
  if (!tables.ok()) return 1;
  EmpDeptOptions data;
  data.num_employees = 30'000;
  data.num_departments = 6'000;
  data.young_fraction = 0.05;
  if (!GenerateEmpDeptData(&catalog, *tables, data).ok()) return 1;

  std::printf(
      "correlated form (not directly executable here):\n"
      "  SELECT e1.sal FROM emp e1 WHERE e1.age < 22\n"
      "    AND e1.sal > (SELECT AVG(e2.sal) FROM emp e2 WHERE e2.dno = e1.dno)\n\n"
      "Kim's flattening turns the subquery into the aggregate view A1:\n");

  const std::string flattened = R"sql(
create view a1 (dno, asal) as
  select e2.dno, avg(e2.sal) from emp e2 group by e2.dno;
select e1.sal
from emp e1, a1 b
where e1.dno = b.dno and e1.age < 22 and e1.sal > b.asal
)sql";
  std::printf("%s\n", flattened.c_str());

  auto query = ParseAndBind(catalog, flattened);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  // The flattened query optimized traditionally (view evaluated first).
  auto traditional = OptimizeTraditional(*query);
  if (!traditional.ok()) return 1;

  // The pull-up transformation collapses it to a single block (query B of
  // the paper) — evaluate the join first, then one group-by with a HAVING.
  auto pulled = PullUpIntoView(*query, 0, {query->base_rels()[0]});
  if (!pulled.ok()) {
    std::fprintf(stderr, "%s\n", pulled.status().ToString().c_str());
    return 1;
  }
  std::printf("after pull-up (the paper's query B):\n%s\n",
              pulled->ToString().c_str());

  auto optimized = OptimizeQueryWithAggViews(*query, OptimizerOptions{});
  if (!optimized.ok()) return 1;

  IoAccountant io_t, io_b;
  auto rows_t = ExecutePlan(traditional->plan, traditional->query,
                           ExecContext::Default().WithIo(&io_t));
  auto rows_b = ExecutePlan(optimized->plan, optimized->query,
                           ExecContext::Default().WithIo(&io_b));
  if (!rows_t.ok() || !rows_b.ok()) return 1;

  std::printf("traditional: est %.1f, measured %lld IO, %zu rows\n",
              traditional->plan->cost, static_cast<long long>(io_t.total()),
              rows_t->rows.size());
  std::printf("cost-based (%s): est %.1f, measured %lld IO, %zu rows\n",
              optimized->description.c_str(), optimized->plan->cost,
              static_cast<long long>(io_b.total()), rows_b->rows.size());
  std::printf("results identical: %s\n",
              rows_t->Fingerprint() == rows_b->Fingerprint() ? "yes" : "NO");

  // ------------------------------------------------------------------
  // Part 2: COUNT subqueries and the outer join (the paper's footnote 3:
  // "In some cases, such transformations may introduce outerjoins").
  //
  //   SELECT d.dno FROM dept d
  //   WHERE (SELECT COUNT(*) FROM emp e WHERE e.dno = d.dno) < 3
  //
  // Departments with NO employees have an empty subquery group; an
  // inner-join flattening silently drops them (the COUNT bug). The correct
  // flattening left-outer-joins the count view and reads COALESCE(cnt, 0).
  std::printf("\n--- COUNT-bug flattening (outer-join extension) ---\n");
  Query q(&catalog);
  int d = q.AddRangeVar(tables->dept, "d");
  int e = q.AddRangeVar(tables->emp, "e");
  q.base_rels() = {d, e};
  ColId d_dno = q.range_var(d).columns[0];
  ColId e_dno = q.range_var(e).columns[1];
  ColId cnt = q.columns().Add("count(*)", DataType::kInt64);
  q.select_list() = {d_dno};

  PlanBuilder b(q);
  std::set<ColId> needed = {d_dno, e_dno, cnt};
  GroupBySpec gb;
  gb.grouping = {e_dno};
  gb.aggregates = {{AggKind::kCountStar, {}, cnt}};
  PlanPtr view = b.GroupBy(b.Scan(e, {}, needed), gb, needed);

  PlanPtr inner_flat = b.Filter(
      b.Join(JoinAlgo::kHash, b.Scan(d, {}, needed), view,
             {EqCols(d_dno, e_dno)}, needed),
      {Cmp(Col(cnt), CompareOp::kLt, LitInt(3))});
  PlanPtr outer_flat = b.Filter(
      b.LeftOuterJoin(b.Scan(d, {}, needed), view, {EqCols(d_dno, e_dno)},
                      needed),
      {Cmp(Coalesce(Col(cnt), LitInt(0)), CompareOp::kLt, LitInt(3))});

  auto wrong = ExecutePlan(b.Project(inner_flat, q.select_list()), q);
  auto right = ExecutePlan(b.Project(outer_flat, q.select_list()), q);
  if (!wrong.ok() || !right.ok()) return 1;
  std::printf("inner-join flattening (the COUNT bug): %zu departments\n",
              wrong->rows.size());
  std::printf("outer-join flattening + COALESCE:      %zu departments\n",
              right->rows.size());
  std::printf("departments recovered by the outer join: %zu\n",
              right->rows.size() - wrong->rows.size());
  return 0;
}
