// Plan explorer: prints every execution alternative the optimizer evaluates
// for a query with an aggregate view — the concrete version of the paper's
// Figure 4 — together with the transformations' effects on the query text.
#include <cstdio>

#include "aggview.h"

using namespace aggview;

int main(int argc, char** argv) {
  // The session front door, plus direct use of the analysis layers below it
  // (invariant-grouping analysis and pull-up operate on the bound Query).
  Session session;
  Catalog& catalog = session.catalog();
  auto tables = CreateEmpDeptSchema(&catalog);
  if (!tables.ok()) return 1;
  EmpDeptOptions data;
  data.num_employees = 50'000;
  data.num_departments = 15'000;
  data.young_fraction = 4.0 / 48.0;
  if (!GenerateEmpDeptData(&catalog, *tables, data).ok()) return 1;

  std::string sql = R"sql(
create view c (dno, asal) as
  select e2.dno, avg(e2.sal)
  from emp e2, dept d2
  where e2.dno = d2.dno and d2.budget < 1000000
  group by e2.dno;
select e1.sal
from emp e1, c
where e1.dno = c.dno and e1.age < 22 and e1.sal > c.asal
)sql";
  if (argc > 1) sql = argv[1];

  auto query = ParseAndBind(catalog, sql);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("=== canonical form ===\n%s\n", query->ToString().c_str());

  // Invariant-grouping analysis per view (Section 4.1).
  for (size_t i = 0; i < query->views().size(); ++i) {
    const AggView& view = query->views()[i];
    InvariantAnalysis analysis = AnalyzeInvariantGrouping(*query, view);
    std::printf("view %s: minimal invariant set = {", view.name.c_str());
    bool first = true;
    for (int rel : analysis.minimal_invariant_set) {
      std::printf("%s%s", first ? "" : ", ",
                  query->range_var(rel).alias.c_str());
      first = false;
    }
    std::printf("}, removable = %zu relation(s)\n", analysis.removable.size());
  }

  // The pull-up rewrite (Section 3, Definition 1).
  if (!query->views().empty() && !query->base_rels().empty()) {
    auto pulled = PullUpIntoView(*query, 0, {query->base_rels()[0]});
    if (pulled.ok()) {
      std::printf("\n=== after pull-up of %s into %s ===\n%s\n",
                  query->range_var(query->base_rels()[0]).alias.c_str(),
                  query->views()[0].name.c_str(), pulled->ToString().c_str());
    }
  }

  // Every alternative the two-phase optimizer evaluates (Section 5.3),
  // through the session facade: Sql() parses, binds and optimizes.
  auto prepared = session.Sql(sql);
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::printf("=== alternatives ===\n");
  for (const PlanAlternative& alt : prepared->alternatives()) {
    std::printf("  %-36s est %10.1f%s\n", alt.description.c_str(), alt.cost,
                alt.description == prepared->description() ? "   <-- chosen"
                                                           : "");
  }
  std::printf("\n=== chosen plan ===\n%s",
              PlanToString(prepared->plan(), prepared->query()).c_str());

  auto result = prepared->Execute();
  if (!result.ok()) return 1;
  std::printf("\nexecuted: %zu rows, %lld IO pages (estimated %.1f)\n",
              result->rows.size(),
              static_cast<long long>(prepared->last_io_pages()),
              prepared->plan()->cost);
  auto analyzed = prepared->ExplainAnalyze();
  if (!analyzed.ok()) return 1;
  std::printf("\n=== explain analyze ===\n%s", analyzed->c_str());
  return 0;
}
