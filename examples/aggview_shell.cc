// Interactive shell: type SQL (the paper's subset) against a generated
// database, see the chosen plan, alternatives, and results.
//
//   ./build/examples/aggview_shell            # emp/dept database
//   ./build/examples/aggview_shell tpcd       # TPC-D style database
//
// Statements end with ';'. Scripts may define views first:
//   create view v (dno, asal) as
//     select e.dno, avg(e.sal) from emp e group by e.dno;
//   select e1.sal from emp e1, v where e1.dno = v.dno and e1.sal > v.asal;
// CREATE MATERIALIZED VIEW name [(cols)] AS select / REFRESH MATERIALIZED
// VIEW name are routed to the session's DDL path; matching aggregate
// queries are then answered from the stored view (see the plan banner).
// Prefix a statement with `explain analyze` to run it instrumented and see
// per-operator actual rows, Q-error, pages and wall time.
// Meta commands: \help \tables \traditional (toggle) \quit
#include <cctype>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "aggview.h"

using namespace aggview;

namespace {

/// Consumes a leading case-insensitive `explain analyze` (the statement may
/// start with view definitions after it). Returns true when present.
bool StripExplainAnalyze(std::string* sql) {
  size_t pos = 0;
  auto skip_space = [&] {
    while (pos < sql->size() &&
           std::isspace(static_cast<unsigned char>((*sql)[pos]))) {
      ++pos;
    }
  };
  auto word = [&](const char* w) {
    size_t len = std::strlen(w);
    if (sql->size() - pos < len) return false;
    for (size_t i = 0; i < len; ++i) {
      if (std::tolower(static_cast<unsigned char>((*sql)[pos + i])) != w[i]) {
        return false;
      }
    }
    pos += len;
    return true;
  };
  skip_space();
  if (!word("explain")) return false;
  skip_space();
  if (!word("analyze")) return false;
  sql->erase(0, pos);
  return true;
}

void PrintTables(const Catalog& catalog) {
  for (int i = 0; i < catalog.num_tables(); ++i) {
    const TableDef& def = catalog.table(static_cast<TableId>(i));
    std::printf("  %-10s %8lld rows   (%s)\n", def.name.c_str(),
                static_cast<long long>(def.stats.row_count),
                def.schema.ToString().c_str());
  }
}

void RunStatement(Session& session, std::string sql) {
  bool analyze = StripExplainAnalyze(&sql);
  if (IsMatViewDdl(sql)) {
    auto message = session.ExecuteDdl(sql);
    if (!message.ok()) {
      std::printf("error: %s\n", message.status().ToString().c_str());
      return;
    }
    std::printf("%s\n", message->c_str());
    return;
  }
  auto prepared = session.Sql(sql);
  if (!prepared.ok()) {
    std::printf("error: %s\n", prepared.status().ToString().c_str());
    return;
  }
  std::printf("-- plan (%s, est %.1f IO pages):\n%s",
              prepared->description().c_str(), prepared->plan()->cost,
              PlanToString(prepared->plan(), prepared->query()).c_str());
  if (prepared->alternatives().size() > 1) {
    std::printf("-- alternatives considered: %zu\n",
                prepared->alternatives().size());
  }
  if (analyze) {
    auto analyzed = prepared->ExplainAnalyze();
    if (!analyzed.ok()) {
      std::printf("error: %s\n", analyzed.status().ToString().c_str());
      return;
    }
    std::printf("%s", analyzed->c_str());
  }
  auto result = prepared->Execute();
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("-- %zu rows, %lld IO pages measured\n", result->rows.size(),
              static_cast<long long>(prepared->last_io_pages()));
  size_t shown = std::min<size_t>(result->rows.size(), 20);
  std::printf("%s", QueryResult{result->layout,
                                {result->rows.begin(),
                                 result->rows.begin() + static_cast<long>(shown)}}
                        .ToString(prepared->query().columns())
                        .c_str());
  if (shown < result->rows.size()) {
    std::printf("... (%zu more)\n", result->rows.size() - shown);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // The session reads AGGVIEW_TEST_THREADS / AGGVIEW_TEST_BATCH_SIZE from
  // the environment (SessionOptions::Default), so the shell can be driven
  // parallel without flags.
  Session session;
  Catalog& catalog = session.catalog();
  if (argc > 1 && std::string(argv[1]) == "tpcd") {
    auto tables = CreateTpcdSchema(&catalog);
    if (!tables.ok()) return 1;
    DbgenOptions options;
    options.scale_factor = 0.005;
    if (!GenerateTpcdData(&catalog, *tables, options).ok()) return 1;
  } else {
    auto tables = CreateEmpDeptSchema(&catalog);
    if (!tables.ok()) return 1;
    if (!GenerateEmpDeptData(&catalog, *tables, EmpDeptOptions{}).ok()) return 1;
  }

  std::printf("aggview shell — cost-based optimization of aggregate views\n"
              "(EDBT 1996 reproduction). \\help for help.\n\ntables:\n");
  PrintTables(catalog);

  bool traditional = false;
  std::string buffer;
  std::string line;
  std::printf("\nsql> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (buffer.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\quit" || line == "\\q") break;
      if (line == "\\tables") {
        PrintTables(catalog);
      } else if (line == "\\traditional") {
        traditional = !traditional;
        session.set_use_traditional(traditional);
        std::printf("optimizer: %s\n",
                    traditional ? "traditional two-phase"
                                : "cost-based with pull-up/push-down");
      } else {
        std::printf(
            "\\tables        list tables\n"
            "\\traditional   toggle traditional vs extended optimizer\n"
            "\\quit          exit\n"
            "Anything else: SQL, terminated by ';'.\n"
            "create/refresh materialized view run as DDL statements.\n"
            "Prefix with `explain analyze` for per-operator actual rows,\n"
            "Q-error, pages and time.\n");
      }
      std::printf("sql> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line;
    buffer += "\n";
    if (buffer.find(';') != std::string::npos &&
        buffer.rfind(';') == buffer.find_last_not_of(" \t\n")) {
      // Heuristic: run when the statement ends with ';' — but only if the
      // script has balanced create-view statements (a ';' inside a script
      // separates views; the final select also ends with ';').
      size_t selects = 0;
      for (size_t pos = 0; (pos = buffer.find("select", pos)) != std::string::npos;
           ++pos) {
        ++selects;
      }
      size_t views = 0;
      for (size_t pos = 0; (pos = buffer.find("create view", pos)) !=
                           std::string::npos;
           ++pos) {
        ++views;
      }
      size_t semis = 0;
      for (char c : buffer) {
        if (c == ';') ++semis;
      }
      if (semis >= views + 1 || views == 0) {
        RunStatement(session, buffer);
        buffer.clear();
      }
    }
    std::printf(buffer.empty() ? "sql> " : "...> ");
    std::fflush(stdout);
  }
  return 0;
}
